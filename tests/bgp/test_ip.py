"""Tests for IPv4 addresses, prefixes, and the radix trie."""

import copy

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.ip import IPv4Address, Prefix, PrefixTrie


class TestIPv4Address:
    def test_parse_dotted(self):
        assert IPv4Address("10.1.2.3").value == 0x0A010203

    def test_str_roundtrip(self):
        assert str(IPv4Address("192.168.0.1")) == "192.168.0.1"

    def test_from_int(self):
        assert str(IPv4Address(0xC0A80001)) == "192.168.0.1"

    def test_packed_roundtrip(self):
        address = IPv4Address("172.16.5.9")
        assert IPv4Address.from_bytes(address.packed()) == address

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address("10.0.0.256")

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address("10.0.0")

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address(2**32)

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    def test_hashable(self):
        assert len({IPv4Address("1.2.3.4"), IPv4Address("1.2.3.4")}) == 1

    def test_deepcopy_identity(self):
        address = IPv4Address("1.2.3.4")
        assert copy.deepcopy(address) is address

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_str_parse_roundtrip(self, value):
        assert IPv4Address(str(IPv4Address(value))).value == value


class TestPrefix:
    def test_parse_cidr(self):
        prefix = Prefix("10.0.0.0/8")
        assert prefix.network == 0x0A000000
        assert prefix.length == 8

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix("10.0.0.1/8")

    def test_length_bounds(self):
        with pytest.raises(ValueError):
            Prefix("10.0.0.0/33")
        assert Prefix("0.0.0.0/0").length == 0
        assert Prefix("10.0.0.1/32").length == 32

    def test_contains_address(self):
        prefix = Prefix("10.0.0.0/8")
        assert prefix.contains(IPv4Address("10.200.3.4"))
        assert not prefix.contains(IPv4Address("11.0.0.0"))

    def test_contains_more_specific(self):
        assert Prefix("10.0.0.0/8").contains(Prefix("10.1.0.0/16"))
        assert not Prefix("10.1.0.0/16").contains(Prefix("10.0.0.0/8"))

    def test_zero_length_contains_everything(self):
        default = Prefix("0.0.0.0/0")
        assert default.contains(Prefix("203.0.113.0/24"))

    def test_supernet(self):
        assert Prefix("10.1.0.0/16").supernet() == Prefix("10.0.0.0/15")
        with pytest.raises(ValueError):
            Prefix("0.0.0.0/0").supernet()

    def test_subnets(self):
        low, high = Prefix("10.0.0.0/8").subnets()
        assert low == Prefix("10.0.0.0/9")
        assert high == Prefix("10.128.0.0/9")
        with pytest.raises(ValueError):
            Prefix("10.0.0.1/32").subnets()

    def test_wire_roundtrip(self):
        prefix = Prefix("192.168.128.0/17")
        wire = prefix.wire_bytes()
        assert wire[0] == 17
        decoded = Prefix.from_wire(wire[0], wire[1:])
        assert decoded == prefix

    def test_wire_minimal_octets(self):
        assert len(Prefix("10.0.0.0/8").wire_bytes()) == 2
        assert len(Prefix("10.0.0.0/16").wire_bytes()) == 3
        assert len(Prefix("0.0.0.0/0").wire_bytes()) == 1

    def test_from_wire_masks_stray_bits(self):
        decoded = Prefix.from_wire(8, bytes([0x0A]))
        assert decoded == Prefix("10.0.0.0/8")

    def test_sortable(self):
        prefixes = [Prefix("10.1.0.0/16"), Prefix("10.0.0.0/8")]
        assert sorted(prefixes)[0] == Prefix("10.0.0.0/8")

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_wire_roundtrip_any(self, network, length):
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        prefix = Prefix(network & mask, length)
        wire = prefix.wire_bytes()
        assert Prefix.from_wire(wire[0], wire[1:]) == prefix


def naive_longest_match(entries, address):
    """Oracle for PrefixTrie.longest_match."""
    best = None
    for prefix, value in entries.items():
        if prefix.contains(address):
            if best is None or prefix.length > best[0].length:
                best = (prefix, value)
    return best


class TestPrefixTrie:
    def test_insert_get(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "a")
        assert trie.get(Prefix("10.0.0.0/8")) == "a"
        assert trie.get(Prefix("10.0.0.0/9")) is None

    def test_replace_keeps_size(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "a")
        trie.insert(Prefix("10.0.0.0/8"), "b")
        assert len(trie) == 1
        assert trie.get(Prefix("10.0.0.0/8")) == "b"

    def test_contains(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), None)
        assert Prefix("10.0.0.0/8") in trie
        assert Prefix("11.0.0.0/8") not in trie

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "a")
        assert trie.remove(Prefix("10.0.0.0/8"))
        assert not trie.remove(Prefix("10.0.0.0/8"))
        assert len(trie) == 0

    def test_remove_keeps_descendants(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "short")
        trie.insert(Prefix("10.1.0.0/16"), "long")
        trie.remove(Prefix("10.0.0.0/8"))
        assert trie.get(Prefix("10.1.0.0/16")) == "long"

    def test_longest_match_picks_most_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "short")
        trie.insert(Prefix("10.1.0.0/16"), "long")
        hit = trie.longest_match(IPv4Address("10.1.2.3"))
        assert hit == (Prefix("10.1.0.0/16"), "long")
        hit = trie.longest_match(IPv4Address("10.2.0.1"))
        assert hit == (Prefix("10.0.0.0/8"), "short")

    def test_longest_match_miss(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), "a")
        assert trie.longest_match(IPv4Address("11.0.0.1")) is None

    def test_default_route_matches_all(self):
        trie = PrefixTrie()
        trie.insert(Prefix("0.0.0.0/0"), "default")
        assert trie.longest_match(IPv4Address("203.0.113.9")) == (
            Prefix("0.0.0.0/0"),
            "default",
        )

    def test_items_in_network_order(self):
        trie = PrefixTrie()
        prefixes = [Prefix("192.168.0.0/16"), Prefix("10.0.0.0/8"),
                    Prefix("10.1.0.0/16")]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        listed = [prefix for prefix, _ in trie.items()]
        assert listed == sorted(prefixes)

    def test_covered_by(self):
        trie = PrefixTrie()
        trie.insert(Prefix("10.0.0.0/8"), 0)
        trie.insert(Prefix("10.1.0.0/16"), 1)
        trie.insert(Prefix("11.0.0.0/8"), 2)
        covered = {prefix for prefix, _ in trie.covered_by(Prefix("10.0.0.0/8"))}
        assert covered == {Prefix("10.0.0.0/8"), Prefix("10.1.0.0/16")}

    @given(
        st.dictionaries(
            st.builds(
                lambda network, length: Prefix(
                    network
                    & (0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF),
                    length,
                ),
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=32),
            ),
            st.integers(),
            max_size=30,
        ),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_longest_match_agrees_with_oracle(self, entries, address_value):
        trie = PrefixTrie()
        for prefix, value in entries.items():
            trie.insert(prefix, value)
        address = IPv4Address(address_value)
        expected = naive_longest_match(entries, address)
        assert trie.longest_match(address) == expected

    @given(
        st.lists(
            st.builds(
                lambda network, length: Prefix(
                    network
                    & (0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF),
                    length,
                ),
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=0, max_value=32),
            ),
            max_size=20,
        )
    )
    def test_insert_remove_all_leaves_empty(self, prefixes):
        trie = PrefixTrie()
        unique = list(dict.fromkeys(prefixes))
        for prefix in unique:
            trie.insert(prefix, str(prefix))
        assert len(trie) == len(unique)
        for prefix in unique:
            assert trie.remove(prefix)
        assert len(trie) == 0
        assert list(trie.items()) == []
