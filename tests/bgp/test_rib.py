"""Tests for the three RIBs."""

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib
from repro.bgp.route import SOURCE_EBGP, Route

P1 = Prefix("10.1.0.0/16")
P2 = Prefix("10.2.0.0/16")


def route(prefix=P1, peer="p1", local_pref=None, asns=(65001,)):
    return Route(
        prefix=prefix,
        attributes=PathAttributes(
            as_path=AsPath.from_sequence(*asns),
            next_hop=IPv4Address("10.0.0.1"),
            local_pref=local_pref,
        ),
        source=SOURCE_EBGP,
        peer=peer,
        peer_as=asns[0],
    )


class TestAdjRibIn:
    def test_update_returns_previous(self):
        rib = AdjRibIn("p1")
        first = route()
        second = route(local_pref=50)
        assert rib.update(first) is None
        assert rib.update(second) is first
        assert rib.get(P1) is second

    def test_withdraw(self):
        rib = AdjRibIn("p1")
        entry = route()
        rib.update(entry)
        assert rib.withdraw(P1) is entry
        assert rib.withdraw(P1) is None
        assert len(rib) == 0

    def test_clear_returns_prefixes(self):
        rib = AdjRibIn("p1")
        rib.update(route(P1))
        rib.update(route(P2))
        assert sorted(rib.clear()) == [P1, P2]
        assert len(rib) == 0

    def test_routes_iteration(self):
        rib = AdjRibIn("p1")
        rib.update(route(P1))
        rib.update(route(P2))
        assert {r.prefix for r in rib.routes()} == {P1, P2}


class TestLocRib:
    def test_set_and_get(self):
        rib = LocRib()
        entry = route()
        change = rib.set(1.0, P1, entry)
        assert change.kind == "advertise"
        assert rib.get(P1) is entry
        assert len(rib) == 1

    def test_idempotent_set_returns_none(self):
        rib = LocRib()
        entry = route()
        rib.set(1.0, P1, entry)
        assert rib.set(2.0, P1, entry) is None
        assert rib.changes_total == 1

    def test_equal_route_does_not_journal(self):
        rib = LocRib()
        rib.set(1.0, P1, route())
        assert rib.set(2.0, P1, route()) is None

    def test_replace_journalled(self):
        rib = LocRib()
        rib.set(1.0, P1, route())
        change = rib.set(2.0, P1, route(local_pref=200))
        assert change.kind == "replace"
        assert rib.changes_total == 2

    def test_withdraw_journalled(self):
        rib = LocRib()
        rib.set(1.0, P1, route())
        change = rib.set(2.0, P1, None)
        assert change.kind == "withdraw"
        assert rib.get(P1) is None

    def test_withdraw_absent_is_noop(self):
        rib = LocRib()
        assert rib.set(1.0, P1, None) is None

    def test_longest_prefix_lookup(self):
        rib = LocRib()
        short = route(Prefix("10.0.0.0/8"))
        long = route(P1, peer="p2")
        rib.set(1.0, Prefix("10.0.0.0/8"), short)
        rib.set(1.0, P1, long)
        assert rib.lookup(IPv4Address("10.1.2.3")) is long
        assert rib.lookup(IPv4Address("10.5.0.1")) is short
        assert rib.lookup(IPv4Address("11.0.0.1")) is None

    def test_journal_filtering(self):
        rib = LocRib()
        rib.set(1.0, P1, route(P1))
        rib.set(2.0, P2, route(P2))
        rib.set(3.0, P1, None)
        assert len(rib.changes_for(P1)) == 2
        assert len(rib.changes_for(P2)) == 1

    def test_journal_capacity_keeps_most_recent(self):
        rib = LocRib(journal_capacity=3)
        for index in range(10):
            pref = 100 + index
            rib.set(float(index), P1, route(local_pref=pref))
        journal = rib.journal()
        assert len(journal) == 3
        # Ring buffer: the latest changes survive eviction.
        assert journal[-1].time == 9.0
        assert rib.changes_total == 10

    def test_recent_changes(self):
        rib = LocRib()
        for index in range(5):
            rib.set(float(index), P1, route(local_pref=100 + index))
        recent = rib.recent_changes(2)
        assert [change.time for change in recent] == [3.0, 4.0]
        assert rib.recent_changes(0) == []
        assert len(rib.recent_changes(99)) == 5


class TestAdjRibOut:
    def test_duplicate_announce_suppressed(self):
        rib = AdjRibOut("p1")
        assert rib.record_announce(route()) is True
        assert rib.record_announce(route()) is False

    def test_changed_attributes_reannounced(self):
        rib = AdjRibOut("p1")
        rib.record_announce(route())
        assert rib.record_announce(route(local_pref=200)) is True

    def test_withdraw_only_when_advertised(self):
        rib = AdjRibOut("p1")
        assert rib.record_withdraw(P1) is False
        rib.record_announce(route())
        assert rib.record_withdraw(P1) is True
        assert rib.record_withdraw(P1) is False

    def test_clear(self):
        rib = AdjRibOut("p1")
        rib.record_announce(route())
        rib.clear()
        assert len(rib) == 0
        assert rib.record_withdraw(P1) is False
