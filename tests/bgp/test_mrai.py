"""Tests for MRAI (minimum route advertisement interval) batching."""

import dataclasses

from repro import quickstart_system
from repro.bgp.config import AddNetwork, RemoveNetwork
from repro.bgp.ip import Prefix


def live_with_mrai(mrai):
    live = quickstart_system(seed=9)
    r2 = live.router("r2")
    r2.config = dataclasses.replace(r2.config, mrai=mrai)
    live.converge()
    return live


class TestMrai:
    def test_mrai_reduces_update_count_under_churn(self):
        """Rapid flaps at r1 must reach r3 as far fewer UPDATEs when r2
        rate-limits with MRAI."""

        def run(mrai):
            live = live_with_mrai(mrai)
            flapper = Prefix("10.1.0.0/16")
            before = live.router("r3").sessions["r2"].stats.updates_received
            start = live.network.sim.now
            for index in range(8):
                change = (
                    RemoveNetwork(flapper) if index % 2 == 0
                    else AddNetwork(flapper)
                )
                live.schedule_change(start + 0.5 * (index + 1), "r1", change)
            live.run(until=start + 40)
            after = live.router("r3").sessions["r2"].stats.updates_received
            return after - before

        without = run(0.0)
        with_mrai = run(10.0)
        assert with_mrai < without

    def test_mrai_converges_to_same_state(self):
        """Batching delays but must not change the final routes."""
        live = live_with_mrai(5.0)
        new_prefix = Prefix("10.70.0.0/16")
        live.apply_change("r1", AddNetwork(new_prefix))
        live.run(until=live.network.sim.now + 30)
        route = live.router("r3").loc_rib.get(new_prefix)
        assert route is not None
        assert list(route.attributes.as_path.asns()) == [65002, 65001]

    def test_coalesced_withdraw_then_announce(self):
        """A flap that settles back within one MRAI window must leave
        the neighbor with the (fresh) route, not a stale withdrawal."""
        live = live_with_mrai(10.0)
        flapper = Prefix("10.1.0.0/16")
        start = live.network.sim.now
        live.schedule_change(start + 0.5, "r1", RemoveNetwork(flapper))
        live.schedule_change(start + 1.0, "r1", AddNetwork(flapper))
        live.run(until=start + 60)
        assert live.router("r3").loc_rib.get(flapper) is not None

    def test_pending_export_in_checkpoint(self):
        """MRAI-pending changes survive checkpoint/restore."""
        live = live_with_mrai(30.0)
        r2 = live.router("r2")
        flapper = Prefix("10.1.0.0/16")
        start = live.network.sim.now
        # Two quick changes: the second lands in the pending buffer.
        live.schedule_change(start + 0.2, "r1", RemoveNetwork(flapper))
        live.schedule_change(start + 0.4, "r1", AddNetwork(flapper))
        live.run(until=start + 3)
        state = r2.export_state()
        if state["pending_export"]:
            from repro.bgp.router import BGPRouter
            import copy

            fresh = BGPRouter(state["config"])
            fresh.attach(live.network)
            fresh.import_state(copy.deepcopy(state))
            assert fresh._pending_export  # noqa: SLF001 - state fidelity
