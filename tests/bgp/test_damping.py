"""Tests for route-flap damping (RFC 2439)."""

import pytest

from repro.bgp.damping import (
    FLAP_ATTRIBUTE_CHANGE,
    FLAP_READVERTISE,
    FLAP_WITHDRAW,
    DampingParams,
    FlapDampener,
)
from repro.bgp.ip import Prefix

P = Prefix("10.1.0.0/16")


def dampener(**kwargs):
    return FlapDampener(params=DampingParams(**kwargs))


class TestParams:
    def test_reuse_below_suppress_enforced(self):
        with pytest.raises(ValueError):
            DampingParams(suppress_threshold=100, reuse_threshold=100)

    def test_half_life_positive(self):
        with pytest.raises(ValueError):
            DampingParams(half_life_s=0)

    def test_penalty_lookup(self):
        params = DampingParams()
        assert params.penalty_for(FLAP_WITHDRAW) == 1000.0
        assert params.penalty_for(FLAP_ATTRIBUTE_CHANGE) == 500.0
        assert params.penalty_for(FLAP_READVERTISE) == 0.0
        with pytest.raises(ValueError):
            params.penalty_for("sneeze")


class TestDampener:
    def test_single_flap_not_suppressed(self):
        d = dampener()
        assert d.record_flap("p1", P, FLAP_WITHDRAW, 0.0) is False
        assert not d.is_suppressed("p1", P, 0.0)

    def test_repeated_flaps_suppress(self):
        d = dampener()
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 1.0)
        # Two decayed withdrawals sit just under the threshold (2000);
        # the third pushes past it.
        suppressed = d.record_flap("p1", P, FLAP_WITHDRAW, 2.0)
        assert suppressed
        assert d.is_suppressed("p1", P, 2.0)

    def test_penalty_decays_exponentially(self):
        d = dampener(half_life_s=10.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        assert d.penalty("p1", P, 0.0) == pytest.approx(1000.0)
        assert d.penalty("p1", P, 10.0) == pytest.approx(500.0)
        assert d.penalty("p1", P, 20.0) == pytest.approx(250.0)

    def test_reuse_after_decay(self):
        d = dampener(half_life_s=1.0)
        for t in (0.0, 0.1, 0.2):
            d.record_flap("p1", P, FLAP_WITHDRAW, t)
        assert d.is_suppressed("p1", P, 0.2)
        # After several half-lives the penalty falls under reuse (750).
        assert not d.is_suppressed("p1", P, 10.0)

    def test_penalty_capped(self):
        d = dampener(half_life_s=1000.0, max_penalty=3000.0)
        for t in range(10):
            d.record_flap("p1", P, FLAP_WITHDRAW, float(t))
        assert d.penalty("p1", P, 9.0) <= 3000.0

    def test_reuse_eta_estimate(self):
        d = dampener(half_life_s=10.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        eta = d.reuse_eta("p1", P, 0.0)
        assert eta is not None
        # At the ETA the route must be reusable.
        assert not d.is_suppressed("p1", P, eta + 0.01)

    def test_eta_none_when_not_suppressed(self):
        d = dampener()
        assert d.reuse_eta("p1", P, 0.0) is None

    def test_per_pair_isolation(self):
        d = dampener()
        other = Prefix("10.2.0.0/16")
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        assert d.is_suppressed("p1", P, 0.0)
        assert not d.is_suppressed("p1", other, 0.0)
        assert not d.is_suppressed("p2", P, 0.0)

    def test_suppressed_routes_enumeration(self):
        d = dampener()
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        assert list(d.suppressed_routes(0.0)) == [("p1", P)]

    def test_flap_count(self):
        d = dampener()
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_ATTRIBUTE_CHANGE, 1.0)
        assert d.flap_count("p1", P) == 2
        assert d.flap_count("p2", P) == 0

    def test_export_import_roundtrip(self):
        d = dampener(half_life_s=10.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        d.record_flap("p1", P, FLAP_WITHDRAW, 0.0)
        restored = FlapDampener(params=d.params)
        restored.import_state(d.export_state())
        assert restored.is_suppressed("p1", P, 0.0)
        assert restored.flap_count("p1", P) == 2
        assert restored.penalty("p1", P, 0.0) == pytest.approx(
            d.penalty("p1", P, 0.0)
        )


class TestRouterIntegration:
    def _flapping_live(self, damping):
        """r1--r2 line where r1's prefix is flapped via config churn."""
        import dataclasses

        from repro import quickstart_system

        live = quickstart_system(seed=9)
        r2 = live.router("r2")
        r2.config = dataclasses.replace(r2.config, damping=damping)
        r2.dampener = None
        if damping is not None:
            from repro.bgp.damping import FlapDampener

            r2.dampener = FlapDampener(params=damping)
        live.converge()
        return live

    def test_flapping_route_gets_suppressed(self):
        from repro.bgp.config import AddNetwork, RemoveNetwork
        from repro.bgp.ip import Prefix as Pfx

        params = DampingParams(half_life_s=60.0)
        live = self._flapping_live(params)
        r2 = live.router("r2")
        flapper = Pfx("10.1.0.0/16")
        for _ in range(3):
            live.apply_change("r1", RemoveNetwork(flapper))
            live.converge()
            live.apply_change("r1", AddNetwork(flapper))
            live.converge()
        assert r2.dampener.flap_count("r1", flapper) >= 3
        assert r2.dampener.is_suppressed("r1", flapper, r2.now)
        # Suppressed: excluded from the decision process.
        assert r2.loc_rib.get(flapper) is None

    def test_suppressed_route_reused_after_decay(self):
        from repro.bgp.config import AddNetwork, RemoveNetwork
        from repro.bgp.ip import Prefix as Pfx

        params = DampingParams(half_life_s=20.0)
        live = self._flapping_live(params)
        r2 = live.router("r2")
        flapper = Pfx("10.1.0.0/16")
        for _ in range(3):
            live.apply_change("r1", RemoveNetwork(flapper))
            live.converge()
            live.apply_change("r1", AddNetwork(flapper))
            live.converge()
        assert r2.loc_rib.get(flapper) is None
        # Let the penalty decay past reuse; the reuse timer re-runs the
        # decision process automatically.
        live.run(until=live.network.sim.now + 200)
        assert r2.loc_rib.get(flapper) is not None

    def test_without_damping_route_stays(self):
        from repro.bgp.config import AddNetwork, RemoveNetwork
        from repro.bgp.ip import Prefix as Pfx

        live = self._flapping_live(None)
        r2 = live.router("r2")
        flapper = Pfx("10.1.0.0/16")
        for _ in range(3):
            live.apply_change("r1", RemoveNetwork(flapper))
            live.converge()
            live.apply_change("r1", AddNetwork(flapper))
            live.converge()
        assert r2.loc_rib.get(flapper) is not None
