"""Tests for path attributes: model and wire codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.attributes import (
    AsPath,
    COMMUNITY_NO_EXPORT,
    Origin,
    PathAttributes,
    SEGMENT_AS_SEQUENCE,
    SEGMENT_AS_SET,
)
from repro.bgp.errors import UpdateMessageError
from repro.bgp.ip import IPv4Address


class TestOrigin:
    def test_names(self):
        assert Origin.name(0) == "IGP"
        assert Origin.name(1) == "EGP"
        assert Origin.name(2) == "INCOMPLETE"
        assert Origin.name(7) == "?7"

    def test_validity(self):
        assert Origin.is_valid(0)
        assert Origin.is_valid(2)
        assert not Origin.is_valid(3)


class TestAsPath:
    def test_from_sequence(self):
        path = AsPath.from_sequence(1, 2, 3)
        assert list(path.asns()) == [1, 2, 3]
        assert path.length() == 3

    def test_empty_path(self):
        path = AsPath()
        assert path.length() == 0
        assert path.first_as() is None
        assert path.origin_as() is None

    def test_prepend(self):
        path = AsPath.from_sequence(2, 3).prepend(1)
        assert list(path.asns()) == [1, 2, 3]

    def test_prepend_to_empty(self):
        path = AsPath().prepend(9)
        assert list(path.asns()) == [9]

    def test_prepend_does_not_mutate(self):
        original = AsPath.from_sequence(5)
        original.prepend(4)
        assert list(original.asns()) == [5]

    def test_as_set_counts_one_hop(self):
        path = AsPath((
            (SEGMENT_AS_SEQUENCE, (1, 2)),
            (SEGMENT_AS_SET, (3, 4, 5)),
        ))
        assert path.length() == 3

    def test_first_and_origin(self):
        path = AsPath.from_sequence(10, 20, 30)
        assert path.first_as() == 10
        assert path.origin_as() == 30

    def test_contains(self):
        path = AsPath.from_sequence(1, 2)
        assert path.contains(2)
        assert not path.contains(3)

    def test_bad_segment_type_rejected(self):
        with pytest.raises(ValueError):
            AsPath(((9, (1,)),))

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            AsPath(((SEGMENT_AS_SEQUENCE, ()),))

    def test_encode_decode_roundtrip(self):
        path = AsPath((
            (SEGMENT_AS_SEQUENCE, (65001, 65002)),
            (SEGMENT_AS_SET, (100, 200)),
        ))
        assert AsPath.decode(path.encode()) == path

    def test_decode_rejects_bad_type(self):
        with pytest.raises(UpdateMessageError) as excinfo:
            AsPath.decode(bytes([7, 1, 0, 1]))
        assert excinfo.value.subcode == UpdateMessageError.MALFORMED_AS_PATH

    def test_decode_rejects_truncated(self):
        with pytest.raises(UpdateMessageError):
            AsPath.decode(bytes([SEGMENT_AS_SEQUENCE, 3, 0, 1]))

    def test_decode_rejects_empty_segment(self):
        with pytest.raises(UpdateMessageError):
            AsPath.decode(bytes([SEGMENT_AS_SEQUENCE, 0]))

    def test_str_rendering(self):
        path = AsPath((
            (SEGMENT_AS_SEQUENCE, (1, 2)),
            (SEGMENT_AS_SET, (3, 4)),
        ))
        assert str(path) == "1 2 {3 4}"

    @given(st.lists(st.integers(min_value=1, max_value=0xFFFF), min_size=0,
                    max_size=20))
    def test_roundtrip_any_sequence(self, asns):
        path = AsPath.from_sequence(*asns)
        assert AsPath.decode(path.encode()) == path

    @given(st.lists(st.integers(min_value=1, max_value=0xFFFF), min_size=1,
                    max_size=10))
    def test_prepend_increases_length_by_one(self, asns):
        path = AsPath.from_sequence(*asns)
        assert path.prepend(9999).length() == path.length() + 1


def make_attrs(**overrides):
    defaults = dict(
        origin=Origin.IGP,
        as_path=AsPath.from_sequence(65001, 65002),
        next_hop=IPv4Address("10.0.0.1"),
    )
    defaults.update(overrides)
    return PathAttributes(**defaults)


class TestPathAttributesModel:
    def test_replace_returns_new(self):
        attrs = make_attrs()
        changed = attrs.replace(med=50)
        assert attrs.med is None
        assert changed.med == 50

    def test_has_community(self):
        attrs = make_attrs(communities=(COMMUNITY_NO_EXPORT, 42))
        assert attrs.has_community(COMMUNITY_NO_EXPORT)
        assert not attrs.has_community(7)

    def test_equality_by_content(self):
        assert make_attrs() == make_attrs()
        assert make_attrs(med=1) != make_attrs(med=2)

    def test_hashable(self):
        assert len({make_attrs(), make_attrs()}) == 1


class TestPathAttributesCodec:
    def test_mandatory_roundtrip(self):
        attrs = make_attrs()
        decoded = PathAttributes.decode(attrs.encode())
        assert decoded == attrs

    def test_full_roundtrip(self):
        attrs = make_attrs(
            origin=Origin.EGP,
            med=4000,
            local_pref=150,
            atomic_aggregate=True,
            aggregator=(65001, IPv4Address("1.2.3.4")),
            communities=(COMMUNITY_NO_EXPORT, (65000 << 16) | 99),
        )
        assert PathAttributes.decode(attrs.encode()) == attrs

    def test_missing_mandatory_rejected(self):
        attrs = make_attrs()
        encoded = attrs.encode()
        # Strip the first attribute (ORIGIN, 4 bytes: flags,type,len,val).
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(encoded[4:])
        assert excinfo.value.subcode == UpdateMessageError.MISSING_WELLKNOWN_ATTRIBUTE

    def test_missing_mandatory_allowed_when_not_required(self):
        decoded = PathAttributes.decode(b"", require_mandatory=False)
        assert decoded.as_path.length() == 0

    def test_duplicate_attribute_rejected(self):
        attrs = make_attrs()
        origin_tlv = bytes([0x40, 1, 1, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(origin_tlv + attrs.encode())
        assert excinfo.value.subcode == UpdateMessageError.MALFORMED_ATTRIBUTE_LIST

    def test_bad_origin_value_rejected(self):
        data = bytes([0x40, 1, 1, 9])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.INVALID_ORIGIN

    def test_bad_flags_rejected(self):
        # ORIGIN marked optional: flags error.
        data = bytes([0xC0, 1, 1, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.ATTRIBUTE_FLAGS_ERROR

    def test_reserved_flag_bits_rejected(self):
        data = bytes([0x41, 1, 1, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.ATTRIBUTE_FLAGS_ERROR

    def test_wrong_fixed_length_rejected(self):
        data = bytes([0x40, 1, 2, 0, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.ATTRIBUTE_LENGTH_ERROR

    def test_overrunning_length_rejected(self):
        data = bytes([0x40, 1, 5, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.ATTRIBUTE_LENGTH_ERROR

    def test_invalid_next_hop_rejected(self):
        data = bytes([0x40, 3, 4, 0, 0, 0, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.INVALID_NEXT_HOP

    def test_multicast_next_hop_rejected(self):
        data = bytes([0x40, 3, 4, 0xE0, 0, 0, 1])
        with pytest.raises(UpdateMessageError):
            PathAttributes.decode(data, require_mandatory=False)

    def test_community_length_multiple_of_four(self):
        data = bytes([0xC0, 8, 3, 0, 0, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert excinfo.value.subcode == UpdateMessageError.OPTIONAL_ATTRIBUTE_ERROR

    def test_unknown_wellknown_rejected(self):
        data = bytes([0x40, 99, 1, 0])
        with pytest.raises(UpdateMessageError) as excinfo:
            PathAttributes.decode(data, require_mandatory=False)
        assert (
            excinfo.value.subcode
            == UpdateMessageError.UNRECOGNIZED_WELLKNOWN_ATTRIBUTE
        )

    def test_unknown_optional_passthrough(self):
        data = bytes([0x80, 99, 2, 0xAB, 0xCD])
        decoded = PathAttributes.decode(data, require_mandatory=False)
        assert decoded.unknown == ((0x80, 99, b"\xab\xcd"),)

    def test_unknown_optional_reencoded_with_partial_bit(self):
        attrs = make_attrs(unknown=((0xC0, 77, b"\x01"),))
        encoded = attrs.encode()
        decoded = PathAttributes.decode(encoded)
        assert decoded.unknown[0][1] == 77

    @given(
        origin=st.sampled_from([0, 1, 2]),
        asns=st.lists(st.integers(min_value=1, max_value=0xFFFF), min_size=1,
                      max_size=6),
        med=st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
        local_pref=st.one_of(st.none(),
                             st.integers(min_value=0, max_value=2**32 - 1)),
        atomic=st.booleans(),
        communities=st.lists(
            st.integers(min_value=0, max_value=2**32 - 1), max_size=5
        ),
    )
    def test_roundtrip_property(self, origin, asns, med, local_pref, atomic,
                                communities):
        attrs = PathAttributes(
            origin=origin,
            as_path=AsPath.from_sequence(*asns),
            next_hop=IPv4Address("10.9.8.7"),
            med=med,
            local_pref=local_pref,
            atomic_aggregate=atomic,
            communities=tuple(communities),
        )
        assert PathAttributes.decode(attrs.encode()) == attrs
