"""Tests for the low-level wire helpers."""

import pytest

from repro.bgp.wire import (
    read_u8,
    read_u16,
    read_u32,
    write_u8,
    write_u16,
    write_u32,
)


class TestReadWrite:
    def test_u8_roundtrip(self):
        out = bytearray()
        write_u8(out, 0xAB)
        assert read_u8(bytes(out), 0) == 0xAB

    def test_u16_roundtrip(self):
        out = bytearray()
        write_u16(out, 0xBEEF)
        assert read_u16(bytes(out), 0) == 0xBEEF

    def test_u32_roundtrip(self):
        out = bytearray()
        write_u32(out, 0xDEADBEEF)
        assert read_u32(bytes(out), 0) == 0xDEADBEEF

    def test_big_endian_layout(self):
        out = bytearray()
        write_u32(out, 0x01020304)
        assert bytes(out) == b"\x01\x02\x03\x04"

    def test_offsets(self):
        data = b"\x00\x01\x02\x03\x04\x05"
        assert read_u16(data, 2) == 0x0203
        assert read_u32(data, 1) == 0x01020304

    @pytest.mark.parametrize("writer,limit", [
        (write_u8, 0xFF), (write_u16, 0xFFFF), (write_u32, 0xFFFFFFFF),
    ])
    def test_range_enforced(self, writer, limit):
        out = bytearray()
        writer(out, limit)
        with pytest.raises(ValueError):
            writer(out, limit + 1)
        with pytest.raises(ValueError):
            writer(out, -1)

    def test_symbolic_friendly_reads(self):
        """Reads must work on index-returning buffer objects."""
        from repro.concolic.symbolic import SymBytes

        data = SymBytes.mark_all(b"\x12\x34\x56\x78")
        value = read_u32(data, 0)
        assert int(value) == 0x12345678
