"""Router behaviour tests: sessions, update pipeline, policy, export."""

from repro.bgp import faults
from repro.bgp.attributes import (
    AsPath,
    COMMUNITY_NO_ADVERTISE,
    COMMUNITY_NO_EXPORT,
    PathAttributes,
)
from repro.bgp.config import (
    AddNetwork,
    NeighborConfig,
    RemoveNetwork,
    RouterConfig,
)
from repro.bgp.fsm import SessionState
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.messages import UpdateMessage
from repro.bgp.policy import Filter
from repro.bgp.router import BGPRouter
from repro.core.live import LiveSystem
from repro.net.link import LinkProfile

P_R1 = Prefix("10.1.0.0/16")
P_R2 = Prefix("10.2.0.0/16")
P_R3 = Prefix("10.3.0.0/16")


def build_line(filters=None, r2_extra=None, seed=3):
    """r1 -- r2 -- r3 line, one /16 each."""
    r2_kwargs = r2_extra or {}
    configs = [
        RouterConfig(
            name="r1",
            local_as=65001,
            router_id=IPv4Address("172.16.0.1"),
            networks=(P_R1,),
            neighbors=(NeighborConfig(peer="r2", peer_as=65002),),
        ),
        RouterConfig(
            name="r2",
            local_as=65002,
            router_id=IPv4Address("172.16.0.2"),
            networks=(P_R2,),
            neighbors=(
                NeighborConfig(peer="r1", peer_as=65001,
                               **(filters or {}).get("r1", {})),
                NeighborConfig(peer="r3", peer_as=65003,
                               **(filters or {}).get("r3", {})),
            ),
            filters=(filters or {}).get("compiled", {}),
            **r2_kwargs,
        ),
        RouterConfig(
            name="r3",
            local_as=65003,
            router_id=IPv4Address("172.16.0.3"),
            networks=(P_R3,),
            neighbors=(NeighborConfig(peer="r2", peer_as=65002),),
        ),
    ]
    links = [
        ("r1", "r2", LinkProfile.wan(latency_ms=10)),
        ("r2", "r3", LinkProfile.wan(latency_ms=10)),
    ]
    return LiveSystem.build(configs, links, seed=seed)


class TestSessionEstablishment:
    def test_sessions_establish(self):
        live = build_line()
        live.run(until=5)
        assert live.router("r1").established_peers() == ["r2"]
        assert live.router("r2").established_peers() == ["r1", "r3"]

    def test_open_records_peer_id(self):
        live = build_line()
        live.run(until=5)
        session = live.router("r1").sessions["r2"]
        assert session.peer_bgp_id == int(IPv4Address("172.16.0.2"))

    def test_wrong_peer_as_refused(self):
        configs = [
            RouterConfig(
                name="a", local_as=1, router_id=IPv4Address("1.1.1.1"),
                neighbors=(NeighborConfig(peer="b", peer_as=99),),
            ),
            RouterConfig(
                name="b", local_as=2, router_id=IPv4Address("2.2.2.2"),
                neighbors=(NeighborConfig(peer="a", peer_as=1),),
            ),
        ]
        live = LiveSystem.build(configs, [("a", "b", LinkProfile.lan())])
        live.run(until=2)
        assert live.router("a").established_peers() == []

    def test_keepalives_flow(self):
        live = build_line()
        live.run(until=65)
        stats = live.router("r1").sessions["r2"].stats
        assert stats.keepalives_sent >= 2
        assert stats.keepalives_received >= 2


class TestRoutePropagation:
    def test_full_propagation(self):
        live = build_line()
        live.converge()
        for name in ("r1", "r2", "r3"):
            prefixes = set(live.router(name).loc_rib.prefixes())
            assert prefixes == {P_R1, P_R2, P_R3}

    def test_as_path_grows_per_hop(self):
        live = build_line()
        live.converge()
        route = live.router("r3").loc_rib.get(P_R1)
        assert list(route.attributes.as_path.asns()) == [65002, 65001]

    def test_next_hop_rewritten_per_ebgp_hop(self):
        live = build_line()
        live.converge()
        route = live.router("r3").loc_rib.get(P_R1)
        assert route.attributes.next_hop == IPv4Address("172.16.0.2")

    def test_withdraw_propagates(self):
        live = build_line()
        live.converge()
        live.apply_change("r1", RemoveNetwork(P_R1))
        live.converge()
        assert live.router("r3").loc_rib.get(P_R1) is None

    def test_announce_after_convergence(self):
        live = build_line()
        live.converge()
        new_prefix = Prefix("10.55.0.0/16")
        live.apply_change("r3", AddNetwork(new_prefix))
        live.converge()
        assert live.router("r1").loc_rib.get(new_prefix) is not None

    def test_no_echo_back_to_sender(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        # r2 must not have advertised r1's prefix back to r1.
        assert r2.adj_rib_out["r1"].advertised(P_R1) is None

    def test_update_suppression(self):
        live = build_line()
        live.converge()
        updates_before = live.router("r3").sessions["r2"].stats.updates_received
        # Re-running the decision process must not emit duplicates.
        live.router("r2").rerun_decision([P_R1, P_R2, P_R3])
        live.run(until=live.network.sim.now + 3)
        updates_after = live.router("r3").sessions["r2"].stats.updates_received
        assert updates_after == updates_before


class TestLoopPrevention:
    def test_own_as_in_path_rejected(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        looped = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.from_sequence(65001, 65002),
                next_hop=IPv4Address("172.16.0.1"),
            ),
            nlri=(Prefix("10.77.0.0/16"),),
        )
        r2.handle_raw("r1", looped.encode())
        assert r2.loc_rib.get(Prefix("10.77.0.0/16")) is None
        assert live.network.trace.count("loop_rejected") == 1

    def test_first_as_enforced(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        spoofed = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.from_sequence(64999),
                next_hop=IPv4Address("172.16.0.1"),
            ),
            nlri=(Prefix("10.77.0.0/16"),),
        )
        r2.handle_raw("r1", spoofed.encode())
        assert r2.loc_rib.get(Prefix("10.77.0.0/16")) is None
        assert live.network.trace.count("first_as_mismatch") == 1


class TestPolicyIntegration:
    def test_import_filter_rejects(self):
        reject_r1 = Filter.compile("filter imp_strict { reject; }")
        live = build_line(
            filters={
                "r1": {"import_filter": "imp_strict"},
                "compiled": {"imp_strict": reject_r1},
            }
        )
        live.converge()
        assert live.router("r2").loc_rib.get(P_R1) is None
        assert live.router("r3").loc_rib.get(P_R1) is None

    def test_import_filter_sets_local_pref(self):
        boost = Filter.compile(
            "filter imp_boost { bgp_local_pref = 250; accept; }"
        )
        live = build_line(
            filters={
                "r1": {"import_filter": "imp_boost"},
                "compiled": {"imp_boost": boost},
            }
        )
        live.converge()
        route = live.router("r2").loc_rib.get(P_R1)
        assert route.attributes.local_pref == 250

    def test_export_filter_blocks(self):
        no_export_r3 = Filter.compile(
            "filter exp_block { if net ~ [ 10.1.0.0/16 ] then reject; accept; }"
        )
        live = build_line(
            filters={
                "r3": {"export_filter": "exp_block"},
                "compiled": {"exp_block": no_export_r3},
            }
        )
        live.converge()
        assert live.router("r3").loc_rib.get(P_R1) is None
        assert live.router("r3").loc_rib.get(P_R2) is not None


class TestCommunities:
    def _inject(self, live, communities, prefix=None):
        prefix = prefix or Prefix("10.88.0.0/16")
        r2 = live.router("r2")
        message = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.from_sequence(65001),
                next_hop=IPv4Address("172.16.0.1"),
                communities=communities,
            ),
            nlri=(prefix,),
        )
        r2.handle_raw("r1", message.encode())
        live.run(until=live.network.sim.now + 3)
        return prefix

    def test_no_export_honored(self):
        live = build_line()
        live.converge()
        prefix = self._inject(live, (COMMUNITY_NO_EXPORT,))
        assert live.router("r2").loc_rib.get(prefix) is not None
        assert live.router("r3").loc_rib.get(prefix) is None

    def test_no_advertise_honored(self):
        live = build_line()
        live.converge()
        prefix = self._inject(live, (COMMUNITY_NO_ADVERTISE,))
        assert live.router("r2").loc_rib.get(prefix) is not None
        assert live.router("r3").loc_rib.get(prefix) is None

    def test_plain_communities_propagate(self):
        live = build_line()
        live.converge()
        prefix = self._inject(live, (12345,))
        route = live.router("r3").loc_rib.get(prefix)
        assert route is not None
        assert 12345 in route.attributes.communities


class TestCrashSemantics:
    def test_injected_bug_crashes_and_recovers(self):
        live = build_line(
            r2_extra={"enabled_bugs": frozenset({faults.BUG_COMMUNITY_CRASH})}
        )
        live.converge()
        r2 = live.router("r2")
        message = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.from_sequence(65001),
                next_hop=IPv4Address("172.16.0.1"),
                communities=(faults.COMMUNITY_CRASH_VALUE,),
            ),
            nlri=(Prefix("10.66.0.0/16"),),
        )
        r2.handle_raw("r1", message.encode())
        assert r2.crash_count == 1
        assert "community_crash" in r2.last_crash
        # Sessions dropped (daemon restart semantics)...
        assert r2.established_peers() == []
        # ...and re-establish after the restart backoff; routes return.
        live.run(until=live.network.sim.now + 15)
        assert r2.established_peers() == ["r1", "r3"]
        assert r2.loc_rib.get(P_R1) is not None

    def test_protocol_error_is_not_a_crash(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        r2.handle_raw("r1", b"\x00" * 19)
        assert r2.crash_count == 0
        assert live.network.trace.count("protocol_error") == 1

    def test_malformed_input_resets_session(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        r2.handle_raw("r1", b"\xff" * 19)
        assert r2.sessions["r1"].state == SessionState.IDLE

    def test_unknown_sender_ignored(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        r2.handle_raw("stranger", b"\x00")
        assert r2.crash_count == 0


class TestHoldTimer:
    def test_hold_expiry_resets_session(self):
        live = build_line()
        live.converge()
        r1, r2 = live.router("r1"), live.router("r2")
        # Sever the link so keepalives stop flowing.
        live.network.link_between("r1", "r2").set_up(False)
        live.run(until=live.network.sim.now + 120)
        assert live.network.trace.count("hold_timer_expired") >= 1
        assert r2.loc_rib.get(P_R1) is None or not r2.sessions["r1"].is_established()


class TestCheckpointContract:
    def test_export_import_roundtrip(self):
        live = build_line()
        live.converge()
        r2 = live.router("r2")
        state = r2.export_state()
        fresh = BGPRouter(state["config"])
        # Attach to the same network namespace for timer machinery.
        import copy

        fresh.attach(live.network)
        fresh.import_state(copy.deepcopy(state))
        assert set(fresh.loc_rib.prefixes()) == set(r2.loc_rib.prefixes())
        assert fresh.established_peers() == r2.established_peers()
        assert len(fresh.adj_rib_in["r1"]) == len(r2.adj_rib_in["r1"])
        assert fresh.crash_count == r2.crash_count


class TestConfigChangeDeterminism:
    """Regression: the networks diff in ``apply_config_change`` once
    iterated a set straight into the decision/propagation sequence, so
    message order varied with the interpreter's hash salt (DET001)."""

    def test_network_diff_reaches_decision_sorted(self, monkeypatch):
        from dataclasses import dataclass, replace

        from repro.bgp.config import ConfigChange

        @dataclass(frozen=True)
        class ReplaceNetworks(ConfigChange):
            networks: tuple

            def apply(self, config):
                return replace(config, networks=self.networks)

            def describe(self):
                return "replace networks"

        live = build_line()
        live.converge()
        router = live.router("r1")
        captured = []
        original = router._run_decision

        def spy(prefixes):
            captured.append(list(prefixes))
            return original(prefixes)

        monkeypatch.setattr(router, "_run_decision", spy)
        added = tuple(
            Prefix(f"10.{octet}.0.0/16") for octet in (99, 7, 42, 63, 18)
        )
        router.apply_config_change(ReplaceNetworks(networks=(P_R1, *added)))
        assert captured, "config change never reached the decision process"
        dirty = captured[0]
        assert set(dirty) == set(added)
        # Sorted order, not whatever order the salted-hash set yields.
        assert dirty == sorted(dirty)
