"""Tests for router configuration: model, parser, runtime changes."""

import pytest

from repro.bgp import faults
from repro.bgp.config import (
    AddFilter,
    AddNetwork,
    NeighborConfig,
    RemoveNetwork,
    RouterConfig,
    SetNeighborFilter,
    parse_config,
)
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.policy import Filter
from repro.bgp.policy_lang import PolicySyntaxError

CONFIG_TEXT = """
router r1 {
    local as 65001;
    router id 10.0.1.1;
    network 10.1.0.0/16;
    network 10.11.0.0/16;
    default local pref 120;
    med compare always;
    neighbor r2 {
        as 65002;
        import filter imp_r2;
        export filter exp_r2;
        hold time 60;
        med 33;
    }
    neighbor r3 {
        as 65003;
    }
    bug community_crash;
}
filter imp_r2 {
    if bgp_path ~ [ 666 ] then reject;
    bgp_local_pref = 200;
    accept;
}
filter exp_r2 { accept; }
"""


def base_config(**overrides):
    fields = dict(
        name="r1",
        local_as=65001,
        router_id=IPv4Address("10.0.0.1"),
        networks=(Prefix("10.1.0.0/16"),),
        neighbors=(NeighborConfig(peer="r2", peer_as=65002),),
    )
    fields.update(overrides)
    return RouterConfig(**fields)


class TestModel:
    def test_neighbor_lookup(self):
        config = base_config()
        assert config.neighbor("r2").peer_as == 65002
        with pytest.raises(KeyError):
            config.neighbor("ghost")

    def test_duplicate_neighbors_rejected(self):
        with pytest.raises(ValueError):
            base_config(
                neighbors=(
                    NeighborConfig(peer="r2", peer_as=1),
                    NeighborConfig(peer="r2", peer_as=2),
                )
            )

    def test_as_range_validated(self):
        with pytest.raises(ValueError):
            base_config(local_as=0)
        with pytest.raises(ValueError):
            base_config(local_as=70000)

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError):
            base_config(enabled_bugs=frozenset({"not_a_bug"}))

    def test_accept_all_always_available(self):
        config = base_config()
        assert config.get_filter("accept_all").evaluate is not None
        with pytest.raises(KeyError):
            config.get_filter("missing")

    def test_ibgp_detection(self):
        neighbor = NeighborConfig(peer="x", peer_as=65001)
        assert neighbor.is_ibgp(65001)
        assert not neighbor.is_ibgp(65002)


class TestParser:
    def test_full_parse(self):
        configs = parse_config(CONFIG_TEXT)
        assert len(configs) == 1
        config = configs[0]
        assert config.name == "r1"
        assert config.local_as == 65001
        assert config.router_id == IPv4Address("10.0.1.1")
        assert Prefix("10.1.0.0/16") in config.networks
        assert config.default_local_pref == 120
        assert config.always_compare_med is True
        assert config.bug_enabled(faults.BUG_COMMUNITY_CRASH)

    def test_neighbor_details(self):
        config = parse_config(CONFIG_TEXT)[0]
        r2 = config.neighbor("r2")
        assert r2.peer_as == 65002
        assert r2.import_filter == "imp_r2"
        assert r2.export_filter == "exp_r2"
        assert r2.hold_time == 60
        assert r2.export_med == 33
        r3 = config.neighbor("r3")
        assert r3.import_filter == "accept_all"

    def test_filters_compiled_and_shared(self):
        config = parse_config(CONFIG_TEXT)[0]
        assert "imp_r2" in config.filters
        assert "exp_r2" in config.filters

    def test_missing_local_as_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("router r1 { router id 1.2.3.4; }")

    def test_missing_router_id_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("router r1 { local as 65001; }")

    def test_unknown_bug_in_text_rejected(self):
        text = (
            "router r1 { local as 1; router id 1.2.3.4; bug nope; }"
        )
        with pytest.raises(PolicySyntaxError):
            parse_config(text)

    def test_multiple_routers(self):
        text = """
        router a { local as 1; router id 1.1.1.1; }
        router b { local as 2; router id 2.2.2.2; }
        """
        configs = parse_config(text)
        assert [config.name for config in configs] == ["a", "b"]

    def test_garbage_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_config("banana")


class TestChanges:
    def test_add_network(self):
        config = base_config()
        changed = AddNetwork(Prefix("10.9.0.0/16")).apply(config)
        assert Prefix("10.9.0.0/16") in changed.networks
        assert Prefix("10.9.0.0/16") not in config.networks

    def test_add_network_idempotent(self):
        config = base_config()
        change = AddNetwork(Prefix("10.1.0.0/16"))
        assert change.apply(config).networks == config.networks

    def test_remove_network(self):
        config = base_config()
        changed = RemoveNetwork(Prefix("10.1.0.0/16")).apply(config)
        assert changed.networks == ()

    def test_set_neighbor_filter(self):
        config = base_config()
        changed = SetNeighborFilter("r2", "import", "strict").apply(config)
        assert changed.neighbor("r2").import_filter == "strict"

    def test_set_neighbor_filter_unknown_peer(self):
        with pytest.raises(KeyError):
            SetNeighborFilter("ghost", "import", "x").apply(base_config())

    def test_set_neighbor_filter_bad_direction(self):
        with pytest.raises(ValueError):
            SetNeighborFilter("r2", "sideways", "x").apply(base_config())

    def test_add_filter(self):
        config = base_config()
        new_filter = Filter.compile("filter strict { reject; }")
        changed = AddFilter(new_filter).apply(config)
        assert changed.get_filter("strict") is new_filter

    def test_describe_strings(self):
        assert "10.9.0.0/16" in AddNetwork(Prefix("10.9.0.0/16")).describe()
        assert "import" in SetNeighborFilter("r2", "import", "f").describe()
