"""Tests for route objects."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.route import SOURCE_EBGP, SOURCE_STATIC, Route


def make_route(**overrides):
    fields = dict(
        prefix=Prefix("10.0.0.0/8"),
        attributes=PathAttributes(
            as_path=AsPath.from_sequence(65001, 65002),
            next_hop=IPv4Address("10.0.0.1"),
        ),
        source=SOURCE_EBGP,
        peer="p1",
        peer_as=65001,
    )
    fields.update(overrides)
    return Route(**fields)


class TestRoute:
    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            make_route(source="carrier-pigeon")

    def test_origin_as(self):
        assert make_route().origin_as == 65002

    def test_origin_as_empty_path(self):
        route = make_route(
            attributes=PathAttributes(next_hop=IPv4Address("10.0.0.1"))
        )
        assert route.origin_as is None

    def test_with_attributes_replaces_only_attributes(self):
        route = make_route()
        new_attrs = route.attributes.replace(med=9)
        changed = route.with_attributes(new_attrs)
        assert changed.attributes.med == 9
        assert changed.peer == route.peer
        assert route.attributes.med is None

    def test_effective_local_pref_priority(self):
        route = make_route()
        assert route.effective_local_pref(default=100) == 100
        route = make_route(
            attributes=route.attributes.replace(local_pref=150)
        )
        assert route.effective_local_pref() == 150
        route.sym["local_pref"] = 999
        assert route.effective_local_pref() == 999

    def test_effective_med_priority(self):
        route = make_route()
        assert route.effective_med() == 0
        route = make_route(attributes=route.attributes.replace(med=5))
        assert route.effective_med() == 5
        route.sym["med"] = 77
        assert route.effective_med() == 77

    def test_sym_excluded_from_equality(self):
        a = make_route()
        b = make_route()
        b.sym["local_pref"] = 1
        assert a == b

    def test_describe_mentions_prefix_and_peer(self):
        text = make_route().describe()
        assert "10.0.0.0/8" in text
        assert "p1" in text

    def test_static_route_describe(self):
        route = make_route(source=SOURCE_STATIC, peer=None, peer_as=None)
        assert "local" in route.describe()
