"""Tests for the BGP message codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.errors import (
    MessageHeaderError,
    OpenMessageError,
    UpdateMessageError,
)
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.messages import (
    HEADER_SIZE,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
    decode_message,
)


def attrs(*asns):
    return PathAttributes(
        as_path=AsPath.from_sequence(*asns),
        next_hop=IPv4Address("10.0.0.1"),
    )


class TestHeader:
    def test_too_short_rejected(self):
        with pytest.raises(MessageHeaderError) as excinfo:
            decode_message(b"\xff" * 18)
        assert excinfo.value.subcode == MessageHeaderError.BAD_MESSAGE_LENGTH

    def test_bad_marker_rejected(self):
        data = bytearray(KeepaliveMessage().encode())
        data[3] = 0x00
        with pytest.raises(MessageHeaderError) as excinfo:
            decode_message(bytes(data))
        assert (
            excinfo.value.subcode
            == MessageHeaderError.CONNECTION_NOT_SYNCHRONIZED
        )

    def test_length_mismatch_rejected(self):
        data = bytearray(KeepaliveMessage().encode())
        data[17] = data[17] + 1
        with pytest.raises(MessageHeaderError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == MessageHeaderError.BAD_MESSAGE_LENGTH

    def test_unknown_type_rejected(self):
        data = bytearray(KeepaliveMessage().encode())
        data[18] = 9
        with pytest.raises(MessageHeaderError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == MessageHeaderError.BAD_MESSAGE_TYPE


class TestKeepalive:
    def test_roundtrip(self):
        decoded = decode_message(KeepaliveMessage().encode())
        assert isinstance(decoded, KeepaliveMessage)

    def test_size_is_header_only(self):
        assert len(KeepaliveMessage().encode()) == HEADER_SIZE

    def test_keepalive_with_body_rejected(self):
        data = bytearray(KeepaliveMessage().encode())
        data.append(0)
        data[16:18] = len(data).to_bytes(2, "big")
        with pytest.raises(MessageHeaderError):
            decode_message(bytes(data))


class TestOpen:
    def test_roundtrip(self):
        message = OpenMessage(
            my_as=65001, hold_time=90, bgp_id=IPv4Address("10.0.0.1")
        )
        decoded = decode_message(message.encode())
        assert isinstance(decoded, OpenMessage)
        assert decoded.my_as == 65001
        assert decoded.hold_time == 90
        assert decoded.bgp_id == IPv4Address("10.0.0.1")
        assert decoded.version == 4

    def test_bad_version_rejected(self):
        data = bytearray(
            OpenMessage(65001, 90, IPv4Address("10.0.0.1")).encode()
        )
        data[HEADER_SIZE] = 3
        with pytest.raises(OpenMessageError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == OpenMessageError.UNSUPPORTED_VERSION

    def test_as_zero_rejected(self):
        data = bytearray(
            OpenMessage(65001, 90, IPv4Address("10.0.0.1")).encode()
        )
        data[HEADER_SIZE + 1 : HEADER_SIZE + 3] = b"\x00\x00"
        with pytest.raises(OpenMessageError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == OpenMessageError.BAD_PEER_AS

    def test_tiny_hold_time_rejected(self):
        data = bytearray(
            OpenMessage(65001, 90, IPv4Address("10.0.0.1")).encode()
        )
        data[HEADER_SIZE + 3 : HEADER_SIZE + 5] = b"\x00\x02"
        with pytest.raises(OpenMessageError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == OpenMessageError.UNACCEPTABLE_HOLD_TIME

    def test_zero_hold_time_allowed(self):
        message = OpenMessage(65001, 0, IPv4Address("10.0.0.1"))
        assert decode_message(message.encode()).hold_time == 0

    def test_zero_identifier_rejected(self):
        data = bytearray(
            OpenMessage(65001, 90, IPv4Address("10.0.0.1")).encode()
        )
        data[HEADER_SIZE + 5 : HEADER_SIZE + 9] = b"\x00" * 4
        with pytest.raises(OpenMessageError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == OpenMessageError.BAD_BGP_IDENTIFIER


class TestNotification:
    def test_roundtrip(self):
        message = NotificationMessage(code=3, subcode=5, data=b"\x01")
        decoded = decode_message(message.encode())
        assert isinstance(decoded, NotificationMessage)
        assert decoded.code == 3
        assert decoded.subcode == 5
        assert decoded.data == b"\x01"

    def test_from_error(self):
        error = UpdateMessageError(UpdateMessageError.INVALID_ORIGIN, "x")
        message = NotificationMessage.from_error(error)
        assert message.code == 3
        assert message.subcode == UpdateMessageError.INVALID_ORIGIN


class TestUpdate:
    def test_announce_roundtrip(self):
        message = UpdateMessage(
            attributes=attrs(65001),
            nlri=(Prefix("10.1.0.0/16"), Prefix("10.2.0.0/16")),
        )
        decoded = decode_message(message.encode())
        assert isinstance(decoded, UpdateMessage)
        assert decoded.nlri == message.nlri
        assert decoded.attributes == message.attributes
        assert decoded.withdrawn == ()

    def test_withdraw_roundtrip(self):
        message = UpdateMessage(withdrawn=(Prefix("10.3.0.0/16"),))
        decoded = decode_message(message.encode())
        assert decoded.withdrawn == (Prefix("10.3.0.0/16"),)
        assert decoded.nlri == ()
        assert decoded.attributes is None

    def test_mixed_roundtrip(self):
        message = UpdateMessage(
            withdrawn=(Prefix("10.3.0.0/16"),),
            attributes=attrs(65001, 65002),
            nlri=(Prefix("10.4.0.0/16"),),
        )
        decoded = decode_message(message.encode())
        assert decoded.withdrawn == message.withdrawn
        assert decoded.nlri == message.nlri

    def test_nlri_requires_attributes(self):
        with pytest.raises(ValueError):
            UpdateMessage(nlri=(Prefix("10.0.0.0/8"),))

    def test_nlri_length_over_32_rejected(self):
        message = UpdateMessage(
            attributes=attrs(65001), nlri=(Prefix("10.1.0.0/16"),)
        )
        data = bytearray(message.encode())
        data[-3] = 33  # prefix length octet of the single NLRI
        with pytest.raises(UpdateMessageError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == UpdateMessageError.INVALID_NETWORK_FIELD

    def test_truncated_nlri_rejected(self):
        message = UpdateMessage(
            attributes=attrs(65001), nlri=(Prefix("10.1.0.0/16"),)
        )
        data = bytearray(message.encode())
        data[-3] = 32  # claims 4 network octets, only 2 present
        with pytest.raises(UpdateMessageError) as excinfo:
            decode_message(bytes(data))
        assert excinfo.value.subcode == UpdateMessageError.INVALID_NETWORK_FIELD

    def test_withdrawn_overrun_rejected(self):
        message = UpdateMessage(withdrawn=(Prefix("10.3.0.0/16"),))
        data = bytearray(message.encode())
        offset = HEADER_SIZE
        data[offset : offset + 2] = (200).to_bytes(2, "big")
        with pytest.raises(UpdateMessageError):
            decode_message(bytes(data))

    def test_attribute_overrun_rejected(self):
        message = UpdateMessage(
            attributes=attrs(65001), nlri=(Prefix("10.1.0.0/16"),)
        )
        data = bytearray(message.encode())
        attr_len_offset = HEADER_SIZE + 2
        data[attr_len_offset : attr_len_offset + 2] = (999).to_bytes(2, "big")
        with pytest.raises(UpdateMessageError):
            decode_message(bytes(data))

    def test_stray_host_bits_masked(self):
        message = UpdateMessage(
            attributes=attrs(65001), nlri=(Prefix("10.1.0.0/16"),)
        )
        data = bytearray(message.encode())
        data[-1] |= 0x01  # does nothing: /16 keeps both octets
        decoded = decode_message(bytes(data))
        assert decoded.nlri[0].length == 16

    @given(
        nlri=st.lists(
            st.sampled_from([
                Prefix("10.0.0.0/8"),
                Prefix("10.1.0.0/16"),
                Prefix("192.168.1.0/24"),
                Prefix("10.1.2.3/32"),
            ]),
            max_size=4,
        ),
        withdrawn=st.lists(
            st.sampled_from([Prefix("172.16.0.0/12"), Prefix("10.9.0.0/16")]),
            max_size=3,
        ),
    )
    def test_roundtrip_property(self, nlri, withdrawn):
        message = UpdateMessage(
            withdrawn=tuple(withdrawn),
            attributes=attrs(65001) if nlri else None,
            nlri=tuple(nlri),
        )
        decoded = decode_message(message.encode())
        assert decoded.nlri == tuple(nlri)
        assert decoded.withdrawn == tuple(withdrawn)
