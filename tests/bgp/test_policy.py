"""Tests for the filter interpreter."""

import pytest

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.policy import (
    ACCEPT_ALL,
    Filter,
    PolicyRuntimeError,
    community_value,
)
from repro.bgp.route import SOURCE_EBGP, SOURCE_STATIC, Route


def make_route(
    prefix="10.1.0.0/16",
    asns=(65001, 65002),
    local_pref=None,
    med=None,
    origin=Origin.IGP,
    communities=(),
    source=SOURCE_EBGP,
    peer_as=65001,
):
    return Route(
        prefix=Prefix(prefix),
        attributes=PathAttributes(
            origin=origin,
            as_path=AsPath.from_sequence(*asns),
            next_hop=IPv4Address("10.0.0.1"),
            local_pref=local_pref,
            med=med,
            communities=tuple(communities),
        ),
        source=source,
        peer="p1" if source == SOURCE_EBGP else None,
        peer_as=peer_as if source == SOURCE_EBGP else None,
    )


def run(source, route, **kwargs):
    return Filter.compile(source).evaluate(route, **kwargs)


class TestVerdicts:
    def test_accept_all(self):
        assert ACCEPT_ALL.evaluate(make_route()).accepted

    def test_reject(self):
        result = run("filter f { reject; }", make_route())
        assert not result.accepted

    def test_fall_through_rejects_and_flags(self):
        result = run("filter f { bgp_med = 5; }", make_route())
        assert not result.accepted
        assert result.fell_through

    def test_first_verdict_wins(self):
        result = run("filter f { accept; reject; }", make_route())
        assert result.accepted


class TestConditions:
    def test_prefix_set_match(self):
        source = "filter f { if net ~ [ 10.0.0.0/8+ ] then accept; reject; }"
        assert run(source, make_route("10.1.0.0/16")).accepted
        assert not run(source, make_route("192.168.0.0/16")).accepted

    def test_prefix_set_length_range(self):
        source = (
            "filter f { if net ~ [ 10.0.0.0/8{16,24} ] then accept; reject; }"
        )
        assert run(source, make_route("10.1.0.0/16")).accepted
        assert not run(source, make_route("10.0.0.0/8")).accepted

    def test_exact_prefix_match(self):
        source = "filter f { if net ~ [ 10.1.0.0/16 ] then accept; reject; }"
        assert run(source, make_route("10.1.0.0/16")).accepted
        assert not run(source, make_route("10.2.0.0/16")).accepted

    def test_as_path_membership(self):
        source = "filter f { if bgp_path ~ [ 666 ] then reject; accept; }"
        assert run(source, make_route(asns=(65001, 65002))).accepted
        assert not run(source, make_route(asns=(65001, 666))).accepted

    def test_path_length(self):
        source = "filter f { if bgp_path.len > 3 then reject; accept; }"
        assert run(source, make_route(asns=(1, 2, 3))).accepted
        assert not run(source, make_route(asns=(1, 2, 3, 4))).accepted

    def test_path_first_and_last(self):
        source = "filter f { if bgp_path.first = 65001 then accept; reject; }"
        assert run(source, make_route(asns=(65001, 5))).accepted
        source = "filter f { if bgp_path.last = 5 then accept; reject; }"
        assert run(source, make_route(asns=(65001, 5))).accepted

    def test_community_match(self):
        value = community_value(65000, 99)
        source = (
            "filter f { if bgp_community ~ (65000, 99) then accept; reject; }"
        )
        assert run(source, make_route(communities=(value,))).accepted
        assert not run(source, make_route()).accepted

    def test_local_pref_default_read(self):
        source = "filter f { if bgp_local_pref = 100 then accept; reject; }"
        assert run(source, make_route(local_pref=None)).accepted
        assert run(
            "filter f { if bgp_local_pref = 77 then accept; reject; }",
            make_route(local_pref=None),
            default_local_pref=77,
        ).accepted

    def test_med_default_zero(self):
        source = "filter f { if bgp_med = 0 then accept; reject; }"
        assert run(source, make_route(med=None)).accepted

    def test_peer_as_readable(self):
        source = "filter f { if peer_as = 65001 then accept; reject; }"
        assert run(source, make_route()).accepted

    def test_source_readable(self):
        source = "filter f { if source = 0 then accept; reject; }"
        assert run(source, make_route(source=SOURCE_STATIC)).accepted
        assert not run(source, make_route(source=SOURCE_EBGP)).accepted

    def test_boolean_combinators(self):
        source = (
            "filter f { if bgp_med = 0 && bgp_path.len < 5 "
            "then accept; reject; }"
        )
        assert run(source, make_route(med=None)).accepted
        source = (
            "filter f { if bgp_med = 9 || bgp_path.len = 2 "
            "then accept; reject; }"
        )
        assert run(source, make_route()).accepted

    def test_not_operator(self):
        source = "filter f { if ! (bgp_med = 5) then accept; reject; }"
        assert run(source, make_route(med=0)).accepted
        assert not run(source, make_route(med=5)).accepted

    def test_arithmetic_in_condition(self):
        source = "filter f { if bgp_med + 10 = 15 then accept; reject; }"
        assert run(source, make_route(med=5)).accepted

    def test_else_branch(self):
        source = (
            "filter f { if bgp_med = 1 then reject; else accept; }"
        )
        assert run(source, make_route(med=0)).accepted


class TestActions:
    def test_set_local_pref(self):
        result = run(
            "filter f { bgp_local_pref = 250; accept; }", make_route()
        )
        assert result.attributes.local_pref == 250

    def test_set_med(self):
        result = run("filter f { bgp_med = 42; accept; }", make_route())
        assert result.attributes.med == 42

    def test_set_origin(self):
        result = run(
            "filter f { bgp_origin = 2; accept; }", make_route()
        )
        assert result.attributes.origin == 2

    def test_community_add(self):
        result = run(
            "filter f { bgp_community.add((65000, 7)); accept; }",
            make_route(),
        )
        assert community_value(65000, 7) in result.attributes.communities

    def test_community_add_idempotent(self):
        value = community_value(65000, 7)
        result = run(
            "filter f { bgp_community.add((65000, 7)); accept; }",
            make_route(communities=(value,)),
        )
        assert result.attributes.communities.count(value) == 1

    def test_community_delete(self):
        value = community_value(65000, 7)
        result = run(
            "filter f { bgp_community.delete((65000, 7)); accept; }",
            make_route(communities=(value, 5)),
        )
        assert value not in result.attributes.communities
        assert 5 in result.attributes.communities

    def test_path_prepend(self):
        result = run(
            "filter f { bgp_path.prepend(65009); accept; }", make_route()
        )
        assert result.attributes.as_path.first_as() == 65009

    def test_rejected_route_keeps_original_attributes(self):
        result = run(
            "filter f { bgp_local_pref = 9; reject; }",
            make_route(local_pref=100),
        )
        assert result.attributes.local_pref == 100

    def test_input_route_never_mutated(self):
        route = make_route(local_pref=100)
        run("filter f { bgp_local_pref = 9; accept; }", route)
        assert route.attributes.local_pref == 100

    def test_no_changes_returns_same_attributes(self):
        route = make_route()
        result = run("filter f { accept; }", route)
        assert result.attributes is route.attributes


class TestRuntimeErrors:
    def test_unknown_attribute(self):
        with pytest.raises(PolicyRuntimeError):
            run("filter f { if nonsense = 1 then accept; reject; }",
                make_route())

    def test_assign_to_readonly(self):
        with pytest.raises(PolicyRuntimeError):
            run("filter f { peer_as = 5; accept; }", make_route())

    def test_unknown_method(self):
        with pytest.raises(PolicyRuntimeError):
            run("filter f { bgp_community.frobnicate((1,2)); accept; }",
                make_route())

    def test_bad_match_types(self):
        with pytest.raises(PolicyRuntimeError):
            run("filter f { if bgp_med ~ [ 10.0.0.0/8 ] then accept; reject; }",
                make_route())


class TestSymbolicShadows:
    def test_shadowed_local_pref_read(self):
        route = make_route(local_pref=100)
        route.sym["local_pref"] = 55
        result = run(
            "filter f { if bgp_local_pref = 55 then accept; reject; }", route
        )
        assert result.accepted

    def test_shadowed_prefix_match(self):
        route = make_route("10.1.0.0/16")
        # Shadow pretends the prefix is 192.168/16.
        route.sym["pfx_network"] = 0xC0A80000
        route.sym["pfx_length"] = 16
        source = (
            "filter f { if net ~ [ 192.168.0.0/16 ] then accept; reject; }"
        )
        assert run(source, route).accepted
