"""Tests for the discrete-event simulator core."""

import pytest

from repro.net.sim import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, lambda tag=label: order.append(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(4.2, lambda: None)
        sim.run()
        assert sim.now == 4.2

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append(sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [2.0]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending == 1


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        sim.run()
        assert seen == [1, 10]

    def test_until_advances_clock_even_when_idle(self):
        sim = Simulator()
        sim.schedule(0.5, lambda: None)
        sim.run(until=9.0)
        assert sim.now == 9.0

    def test_max_events(self):
        sim = Simulator()
        seen = []
        for index in range(5):
            sim.schedule(float(index + 1), lambda i=index: seen.append(i))
        sim.run(max_events=2)
        assert seen == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_run_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_run == 3


class TestDeterminism:
    def test_two_identical_runs_identical_history(self):
        def run_once():
            sim = Simulator(seed=9)
            history = []
            rng = sim.random.stream("test")

            def tick(n):
                history.append((round(sim.now, 6), n, rng.random()))
                if n < 20:
                    sim.schedule(rng.uniform(0.1, 1.0), lambda: tick(n + 1))

            sim.schedule(0.0, lambda: tick(0))
            sim.run()
            return history

        assert run_once() == run_once()
