"""Tests for the trace recorder."""

from repro.net.trace import TraceRecorder


def test_record_and_filter():
    trace = TraceRecorder()
    trace.record(1.0, "send", "a", dst="b")
    trace.record(2.0, "recv", "b", src="a")
    trace.record(3.0, "send", "b", dst="a")
    assert trace.count("send") == 2
    assert len(list(trace.events(kind="send"))) == 2
    assert len(list(trace.events(node="b"))) == 2
    assert len(list(trace.events(kind="send", node="b"))) == 1


def test_disabled_recorder_is_noop():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "send", "a")
    assert len(trace) == 0
    assert trace.count("send") == 0


def test_capacity_evicts_storage_but_keeps_counts():
    trace = TraceRecorder(capacity=2)
    for index in range(5):
        trace.record(float(index), "tick", "a")
    assert len(trace) == 2
    assert trace.count("tick") == 5


def test_subscriber_called_synchronously():
    trace = TraceRecorder()
    seen = []
    trace.subscribe(seen.append)
    trace.record(1.0, "send", "a")
    assert len(seen) == 1
    assert seen[0].kind == "send"


def test_clear_resets_everything():
    trace = TraceRecorder()
    trace.record(1.0, "send", "a")
    trace.clear()
    assert len(trace) == 0
    assert trace.count("send") == 0


def test_event_details_preserved():
    trace = TraceRecorder()
    trace.record(1.5, "rib_change", "r1", prefix="10.0.0.0/8", transition="advertise")
    event = next(trace.events())
    assert event.time == 1.5
    assert event.detail["prefix"] == "10.0.0.0/8"
