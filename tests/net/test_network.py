"""Tests for the network container."""

import pytest

from repro.net.link import LinkProfile
from repro.net.network import Network
from repro.net.node import Process


class Echo(Process):
    """Collects deliveries; replies when asked."""

    def __init__(self, name, reply=False):
        super().__init__(name)
        self.inbox = []
        self.reply = reply
        self.started = 0

    def start(self):
        self.started += 1

    def on_message(self, src, payload):
        self.inbox.append((src, payload))
        if self.reply:
            self.send(src, f"ack:{payload}")


def two_node_net(seed=0):
    net = Network(seed=seed)
    a = net.add_process(Echo("a"))
    b = net.add_process(Echo("b", reply=True))
    net.add_link("a", "b", LinkProfile(latency_s=0.1))
    return net, a, b


class TestConstruction:
    def test_duplicate_process_rejected(self):
        net = Network()
        net.add_process(Echo("a"))
        with pytest.raises(ValueError):
            net.add_process(Echo("a"))

    def test_link_requires_known_processes(self):
        net = Network()
        net.add_process(Echo("a"))
        with pytest.raises(KeyError):
            net.add_link("a", "ghost")

    def test_duplicate_link_rejected(self):
        net, _, _ = two_node_net()
        with pytest.raises(ValueError):
            net.add_link("b", "a")

    def test_neighbors_sorted(self):
        net = Network()
        for name in ("c", "a", "b"):
            net.add_process(Echo(name))
        net.add_link("b", "c")
        net.add_link("b", "a")
        assert net.neighbors("b") == ["a", "c"]

    def test_start_hooks_run_once(self):
        net, a, _ = two_node_net()
        net.run()
        net.run()
        assert a.started == 1

    def test_start_silently_skips_hooks(self):
        net = Network()
        a = net.add_process(Echo("a"))
        net.start_silently()
        net.run()
        assert a.started == 0


class TestTransport:
    def test_delivery_with_latency(self):
        net, _, b = two_node_net()
        net.start()
        net.transmit("a", "b", "hello")
        net.run()
        assert b.inbox == [("a", "hello")]
        # b replied, so the final event is the ack at 2x the latency.
        assert net.sim.now == pytest.approx(0.2)

    def test_reply_roundtrip(self):
        net, a, _ = two_node_net()
        net.start()
        net.transmit("a", "b", "ping")
        net.run()
        assert a.inbox == [("b", "ack:ping")]

    def test_transmit_without_link_raises(self):
        net = Network()
        net.add_process(Echo("a"))
        net.add_process(Echo("c"))
        with pytest.raises(KeyError):
            net.transmit("a", "c", "x")

    def test_inject_bypasses_links(self):
        net = Network()
        b = net.add_process(Echo("b"))
        net.start()
        net.inject("phantom", "b", "spoofed", delay=0.5)
        net.run()
        assert b.inbox == [("phantom", "spoofed")]

    def test_loss_reported_by_transmit(self):
        net = Network(seed=1)
        net.add_process(Echo("a"))
        net.add_process(Echo("b"))
        net.add_link("a", "b", LinkProfile(loss=0.99))
        net.start()
        results = [net.transmit("a", "b", i) for i in range(50)]
        assert not all(results)


class TestObservation:
    def test_trace_records_send_and_recv(self):
        net, _, _ = two_node_net()
        net.start()
        net.transmit("a", "b", "x")
        net.run()
        assert net.trace.count("send") >= 1
        assert net.trace.count("recv") >= 1

    def test_delivery_tap_sees_payload(self):
        net, _, _ = two_node_net()
        seen = []
        net.tap_deliveries(lambda s, d, p: seen.append((s, d, p)))
        net.start()
        net.transmit("a", "b", "x")
        net.run()
        assert ("a", "b", "x") in seen

    def test_interceptor_consumes(self):
        net, _, b = two_node_net()
        net.add_interceptor(lambda s, d, p: p == "secret")
        net.start()
        net.transmit("a", "b", "secret")
        net.transmit("a", "b", "public")
        net.run()
        assert b.inbox == [("a", "public")]

    def test_interceptor_removal(self):
        net, _, b = two_node_net()
        interceptor = lambda s, d, p: True  # noqa: E731
        net.add_interceptor(interceptor)
        net.remove_interceptor(interceptor)
        net.start()
        net.transmit("a", "b", "x")
        net.run()
        assert b.inbox == [("a", "x")]

    def test_in_flight_lists_scheduled_messages(self):
        net, _, _ = two_node_net()
        net.start()
        net.transmit("a", "b", "x")
        in_flight = net.in_flight()
        assert len(in_flight) == 1
        assert in_flight[0].src == "a"
        assert in_flight[0].payload == "x"
        net.run()
        assert net.in_flight() == []

    def test_quiescent(self):
        net, _, _ = two_node_net()
        net.start()
        assert net.quiescent()
        net.transmit("a", "b", "x")
        assert not net.quiescent()


class TestTimers:
    def test_timer_fires(self):
        class Timed(Process):
            def __init__(self):
                super().__init__("t")
                self.fired = []

            def on_timer(self, name):
                self.fired.append((name, self.now))

        net = Network()
        node = net.add_process(Timed())
        net.start()
        node.set_timer("x", 2.0)
        net.run()
        assert node.fired == [("x", 2.0)]

    def test_timer_rearm_replaces(self):
        class Timed(Process):
            def __init__(self):
                super().__init__("t")
                self.fired = 0

            def on_timer(self, name):
                self.fired += 1

        net = Network()
        node = net.add_process(Timed())
        net.start()
        node.set_timer("x", 1.0)
        node.set_timer("x", 2.0)
        net.run()
        assert node.fired == 1
        assert net.sim.now == pytest.approx(2.0)

    def test_cancel_timer(self):
        class Timed(Process):
            def __init__(self):
                super().__init__("t")
                self.fired = 0

            def on_timer(self, name):
                self.fired += 1

        net = Network()
        node = net.add_process(Timed())
        net.start()
        node.set_timer("x", 1.0)
        assert node.timer_armed("x")
        node.cancel_timer("x")
        assert not node.timer_armed("x")
        net.run()
        assert node.fired == 0

    def test_timer_state_exported(self):
        class Timed(Process):
            def on_timer(self, name):
                pass

        net = Network()
        node = net.add_process(Timed("t"))
        net.start()
        node.set_timer("x", 5.0)
        net.run(until=2.0)
        state = node.export_state()
        assert state["timers"]["x"] == pytest.approx(3.0)
