"""Tests for the link model."""

import random

import pytest

from repro.net.link import Link, LinkProfile


class TestLinkProfile:
    def test_defaults_valid(self):
        profile = LinkProfile()
        assert profile.latency_s > 0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LinkProfile(latency_s=-1)

    def test_loss_must_be_probability(self):
        with pytest.raises(ValueError):
            LinkProfile(loss=1.0)
        with pytest.raises(ValueError):
            LinkProfile(loss=-0.1)

    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            LinkProfile(bandwidth_bps=0)

    def test_wan_helper(self):
        profile = LinkProfile.wan(latency_ms=50, jitter_ms=10, loss=0.01)
        assert profile.latency_s == pytest.approx(0.05)
        assert profile.jitter_s == pytest.approx(0.01)
        assert profile.loss == 0.01


class TestLink:
    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a")

    def test_other_endpoint(self):
        link = Link("a", "b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(KeyError):
            link.other("c")

    def test_delay_includes_latency(self):
        link = Link("a", "b", LinkProfile(latency_s=0.1))
        delay = link.delay_for("a", "b", b"x", now=0.0, rng=random.Random(0))
        assert delay == pytest.approx(0.1)

    def test_jitter_bounded(self):
        link = Link("a", "b", LinkProfile(latency_s=0.1, jitter_s=0.05))
        rng = random.Random(1)
        for _ in range(100):
            delay = link.delay_for("a", "b", b"x", now=0.0, rng=rng)
            assert 0.1 <= delay <= 0.15 + 1e-9

    def test_loss_drops_messages(self):
        link = Link("a", "b", LinkProfile(loss=0.5))
        rng = random.Random(2)
        outcomes = [
            link.delay_for("a", "b", b"x", 0.0, rng) for _ in range(200)
        ]
        dropped = sum(1 for outcome in outcomes if outcome is None)
        assert 50 < dropped < 150
        assert link.dropped == dropped

    def test_reliable_flag_never_drops(self):
        link = Link("a", "b", LinkProfile(loss=0.9))
        rng = random.Random(3)
        for _ in range(100):
            delay = link.delay_for("a", "b", b"x", 0.0, rng, reliable=True)
            assert delay is not None

    def test_down_link_drops_everything(self):
        link = Link("a", "b")
        link.set_up(False)
        assert link.delay_for("a", "b", b"x", 0.0, random.Random(0)) is None
        link.set_up(True)
        assert link.delay_for("a", "b", b"x", 0.0, random.Random(0)) is not None

    def test_fifo_per_direction_under_jitter(self):
        link = Link("a", "b", LinkProfile(latency_s=0.1, jitter_s=0.2))
        rng = random.Random(4)
        now = 0.0
        arrivals = []
        for _ in range(50):
            delay = link.delay_for("a", "b", b"x", now, rng)
            arrivals.append(now + delay)
            now += 0.01
        assert arrivals == sorted(arrivals)

    def test_directions_have_independent_fifo_clocks(self):
        link = Link("a", "b", LinkProfile(latency_s=1.0))
        rng = random.Random(5)
        forward = link.delay_for("a", "b", b"x", 0.0, rng)
        backward = link.delay_for("b", "a", b"x", 0.0, rng)
        assert forward == pytest.approx(1.0)
        assert backward == pytest.approx(1.0)

    def test_bandwidth_adds_serialization_delay(self):
        # 8000 bits/s, 100-byte payload => 0.1 s of serialization.
        link = Link("a", "b", LinkProfile(latency_s=0.0, bandwidth_bps=8000))
        delay = link.delay_for("a", "b", b"x" * 100, 0.0, random.Random(0))
        assert delay == pytest.approx(0.1)

    def test_encoded_payload_size_used(self):
        class FakeMessage:
            def encode(self):
                return b"y" * 1000

        link = Link("a", "b", LinkProfile(latency_s=0.0, bandwidth_bps=8000))
        delay = link.delay_for("a", "b", FakeMessage(), 0.0, random.Random(0))
        assert delay == pytest.approx(1.0)
