"""HRM001 fixture: a clean field-annotated wire dataclass."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    index: int
    payload: bytes
    node: str
    kind = "task"
