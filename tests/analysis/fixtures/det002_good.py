"""DET002 fixture: listings wrapped in sorted()."""

import os


def entries(path):
    return sorted(os.listdir(path))
