"""Oracle that only imports the allowed helper — but the helper leaks."""

from repro import helper


def verdict() -> str:
    return helper.describe()
