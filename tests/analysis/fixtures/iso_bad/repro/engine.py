"""The machinery the oracle must never reach."""


def decide() -> str:
    return "best-path"
