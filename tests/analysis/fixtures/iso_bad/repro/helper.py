"""Innocent-looking middle hop: pulls the engine in transitively."""

from repro import engine


def describe() -> str:
    return engine.decide()
