"""SUP001 fixture: suppressions without justification."""

import time


def stamp() -> float:
    return time.time()  # repro: allow[DET003]


def mystery() -> int:
    return 1  # repro: allow[ZZZ999] rule id does not exist
