"""Worker entry point keeping every bit of state task-local."""


def run_task(task) -> dict:
    scratch: dict = {}
    scratch[task] = 1
    return scratch
