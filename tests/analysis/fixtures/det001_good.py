"""DET001 fixture: sets consumed sorted or order-insensitively."""


def report(names: set) -> list:
    return [name for name in sorted(names)]


def count(names: set) -> int:
    return len(names)


def merged(a: set, b: set) -> list:
    return sorted(a | b)
