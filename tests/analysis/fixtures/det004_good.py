"""DET004 fixture: hash() only inside the __hash__/__eq__ protocol."""


class Point:
    def __init__(self, x: int):
        self.x = x

    def __hash__(self) -> int:
        return hash(("point", self.x))

    def __eq__(self, other) -> bool:
        return isinstance(other, Point) and hash(self) == hash(other)
