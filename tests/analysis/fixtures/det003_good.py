"""DET003 fixture: randomness derived from an explicit seed."""

import random


def rng_for(seed: int) -> random.Random:
    return random.Random(seed)
