"""Oracle importing only the allowed helper."""

from repro import helper


def verdict() -> str:
    return helper.describe()
