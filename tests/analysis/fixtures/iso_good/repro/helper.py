"""Self-contained helper."""


def describe() -> str:
    return "ok"
