"""WIRE001 fixture: every write goes through the frame encoder."""

import pickle
import socket


def encode_frame(payload) -> bytes:
    return b"\x00" + pickle.dumps(payload)


def push(sock: socket.socket, payload) -> None:
    frame = encode_frame(payload)
    sock.sendall(frame)


def push_inline(sock: socket.socket, payload) -> None:
    sock.sendall(encode_frame(payload))
