"""Worker entry point: hermetic itself, but imports leaky state."""

from repro import state


def run_task(task) -> int:
    return state.bump(task)
