"""Module-level mutable state, reached transitively from the worker."""

import os

_CALLS: list = []
_TOTAL = 0


def bump(task) -> int:
    _CALLS.append(task)
    return len(_CALLS)


def reset() -> None:
    global _TOTAL
    _TOTAL = 0


def mode() -> str | None:
    return os.environ.get("MODE")
