"""DET004 fixture: process-local identity feeding keys."""


def cache_key(obj) -> int:
    return id(obj)


def bucket(name: str) -> int:
    return hash(name) % 8
