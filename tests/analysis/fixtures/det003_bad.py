"""DET003 fixture: raw entropy and wall clock."""

import random
import time
import uuid


def jitter() -> float:
    return random.random() + time.time()


def token() -> str:
    return uuid.uuid4().hex


def unseeded() -> random.Random:
    return random.Random()
