"""Suppression fixture: a reasoned pragma waives one finding."""

import time


def stamp() -> float:
    return time.time()  # repro: allow[DET003] wall-clock display only
