"""DET002 fixture: filesystem listings in filesystem order."""

import glob
import os


def entries(path):
    out = []
    for name in os.listdir(path):
        out.append(name)
    return out


def configs(pattern):
    return list(glob.glob(pattern))
