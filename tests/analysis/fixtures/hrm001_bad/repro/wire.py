"""HRM001 fixture: wire shapes that cannot (safely) pickle."""

import socket
from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    index: int
    conn: socket.socket
    scratch = []


class Outcome:
    def __init__(self, ok: bool):
        self.ok = ok
