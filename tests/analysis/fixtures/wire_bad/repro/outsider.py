"""WIRE001 fixture: sockets outside the codec module."""

import socket


def probe(host: str):
    return socket.create_connection((host, 80))
