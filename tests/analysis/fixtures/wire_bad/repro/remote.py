"""WIRE001 fixture: a raw pickle write next to the codec."""

import pickle
import socket


def encode_frame(payload) -> bytes:
    return b"\x00" + pickle.dumps(payload)


def push(sock: socket.socket, payload) -> None:
    sock.sendall(pickle.dumps(payload))
