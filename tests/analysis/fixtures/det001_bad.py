"""DET001 fixture: set iteration order escaping into ordered output."""


def report(names: set) -> list:
    rows = []
    for name in names:
        rows.append(name)
    return rows


def csv() -> str:
    tags = {"a", "b", "c"}
    return ",".join(tags)
