"""Suppression-pragma semantics and baseline round-trips."""

from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import lint_paths
from repro.analysis.findings import finding_fingerprint
from repro.analysis.pragmas import parse_pragmas

BAD_SOURCE = '''"""Fixture written to tmp_path: two DET003 findings."""

import time


def first() -> float:
    return time.time()


def second() -> float:
    return time.time()
'''


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "clocky.py"
    path.write_text(BAD_SOURCE)
    return path


class TestPragmaParsing:
    def test_inline_pragma_applies_to_its_own_line(self):
        pragmas = parse_pragmas(
            "x = 1\ny = time.time()  # repro: allow[DET003] startup stamp\n"
        )
        assert len(pragmas) == 1
        assert pragmas[0].applies_to == 2
        assert pragmas[0].rules == ("DET003",)
        assert pragmas[0].reason == "startup stamp"

    def test_standalone_pragma_applies_to_next_code_line(self):
        pragmas = parse_pragmas(
            "# repro: allow[HRM002] reason part one\n"
            "# and a continuation comment line\n"
            "\n"
            "STATE = {}\n"
        )
        assert pragmas[0].applies_to == 4

    def test_multiple_rules_and_case_normalisation(self):
        pragmas = parse_pragmas("x = 1  # repro: allow[det003, hrm002] why\n")
        assert pragmas[0].rules == ("DET003", "HRM002")

    def test_bare_pragma_has_no_reason(self):
        pragmas = parse_pragmas("x = 1  # repro: allow[DET003]\n")
        assert pragmas[0].bare


class TestFingerprints:
    def test_fingerprint_is_line_number_independent(self):
        a = finding_fingerprint("DET003", "m.py", "return time.time()", 0)
        b = finding_fingerprint("DET003", "m.py", "return time.time()", 0)
        assert a == b
        # Same text elsewhere in the file is a distinct occurrence.
        c = finding_fingerprint("DET003", "m.py", "return time.time()", 1)
        assert c != a

    def test_moving_a_finding_keeps_its_fingerprint(self, tmp_path):
        path = tmp_path / "clocky.py"
        path.write_text(BAD_SOURCE)
        before = lint_paths([path]).findings
        # Push the whole file down: line numbers change, text does not.
        path.write_text("# a new leading comment\n\n" + BAD_SOURCE)
        after = lint_paths([path]).findings
        assert [f.fingerprint for f in before] == [
            f.fingerprint for f in after
        ]
        assert [f.line for f in before] != [f.line for f in after]


class TestBaselineRoundTrip:
    def test_accept_save_reload_accept(self, bad_file, tmp_path):
        report = lint_paths([bad_file])
        det = [f for f in report.findings if f.rule == "DET003"]
        assert len(det) == 2

        baseline = Baseline.from_findings(det, reason="legacy clock use")
        baseline_path = tmp_path / "baseline.json"
        baseline.save(baseline_path)

        reloaded = Baseline.load(baseline_path)
        gated = lint_paths([bad_file], baseline=reloaded)
        assert gated.ok
        assert len(gated.baselined) == 2
        assert all(e.reason == "legacy clock use" for _, e in gated.baselined)
        assert not gated.stale_baseline

    def test_reasonless_entry_is_a_sup002_finding(self, bad_file):
        report = lint_paths([bad_file])
        baseline = Baseline.from_findings(report.findings, reason="")
        gated = lint_paths([bad_file], baseline=baseline)
        assert not gated.ok
        assert {f.rule for f in gated.findings} == {"SUP002"}
        assert all("no reason" in f.message for f in gated.findings)

    def test_fixed_finding_reports_the_entry_as_stale(self, bad_file):
        report = lint_paths([bad_file])
        baseline = Baseline.from_findings(report.findings, reason="legacy")
        bad_file.write_text('"""All fixed."""\n\nVALUE = 1\n')
        gated = lint_paths([bad_file], baseline=baseline)
        assert gated.ok
        assert len(gated.stale_baseline) == 2
        assert "stale baseline" in gated.render_human()

    def test_version_mismatch_is_loud(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_save_is_deterministically_ordered(self, tmp_path):
        entries = {
            "bbb": BaselineEntry("bbb", "DET003", "z.py", "why"),
            "aaa": BaselineEntry("aaa", "DET001", "a.py", "why"),
        }
        path = tmp_path / "baseline.json"
        Baseline(entries=entries).save(path)
        text = path.read_text()
        assert text.index('"a.py"') < text.index('"z.py"')


class TestReportShapes:
    def test_json_report_shape(self, bad_file, tmp_path):
        report = lint_paths([bad_file])
        out = tmp_path / "report.json"
        report.write_json(out)
        import json

        data = json.loads(out.read_text())
        assert data["version"] == 1
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert {f["rule"] for f in data["findings"]} == {"DET003"}
        for finding in data["findings"]:
            assert {"rule", "path", "line", "message", "fingerprint"} <= set(
                finding
            )

    def test_human_report_has_line_text_and_summary(self, bad_file):
        text = lint_paths([bad_file]).render_human()
        assert "time.time()" in text
        assert text.strip().endswith("1 file(s) checked")
        assert "FAIL —" in text
