"""Per-rule fixture tests: known-bad must flag, known-good must pass.

The DET rules run on standalone fixture files; the contract-driven
rules (ISO001, HRM001/2, WIRE001) run on miniature package trees under
``fixtures/*/repro/`` with the :mod:`repro.analysis.contracts` tables
monkeypatched to point at them — the linter only parses the trees, so
a fixture package named ``repro`` never shadows the real one.
"""

from pathlib import Path

import pytest

from repro.analysis import contracts
from repro.analysis.contracts import ImportContract
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(rule: str, *paths) -> list:
    report = lint_paths([Path(p) for p in paths])
    return [f for f in report.findings if f.rule == rule]


class TestRegistry:
    def test_every_documented_rule_is_registered(self):
        assert set(rule_ids()) == {
            "DET001", "DET002", "DET003", "DET004",
            "ISO001", "HRM001", "HRM002", "WIRE001",
            "SUP001", "SUP002",
        }

    def test_rules_carry_their_invariant(self):
        for rule in all_rules():
            assert rule.summary, rule.id
            assert rule.invariant, rule.id


class TestDeterminismFixtures:
    @pytest.mark.parametrize("rule,expected_bad", [
        ("DET001", 2),  # for-loop over a set param, join over a set literal
        ("DET002", 2),  # os.listdir loop, list(glob.glob(...))
        ("DET003", 4),  # random.random, time.time, uuid4, bare Random()
        ("DET004", 2),  # id() and hash() outside __hash__
    ])
    def test_bad_fixture_flags(self, rule, expected_bad):
        stem = rule.lower()
        found = findings_for(rule, FIXTURES / f"{stem}_bad.py")
        assert len(found) == expected_bad, [f.render() for f in found]

    @pytest.mark.parametrize(
        "rule", ["DET001", "DET002", "DET003", "DET004"]
    )
    def test_good_fixture_passes(self, rule):
        stem = rule.lower()
        assert not findings_for(rule, FIXTURES / f"{stem}_good.py")

    def test_findings_carry_position_and_line_text(self):
        found = findings_for("DET004", FIXTURES / "det004_bad.py")
        assert all(f.line > 0 and f.line_text.strip() for f in found)
        assert any("id(obj)" in f.line_text for f in found)


@pytest.fixture
def iso_contract(monkeypatch):
    monkeypatch.setattr(contracts, "IMPORT_CONTRACTS", (
        ImportContract(
            name="fixture-oracle",
            rationale="the oracle must never reach the engine",
            roots=("repro.oracle",),
            allow_direct=("repro.helper",),
            allow_transitive=("repro.helper",),
            forbid=("repro.engine",),
        ),
    ))


class TestImportContractFixtures:
    def test_transitive_leak_flags(self, iso_contract):
        found = findings_for("ISO001", FIXTURES / "iso_bad")
        assert found
        # The leak is transitive: oracle -> helper -> engine.  Blame
        # lands on the importing module so the fix is actionable.
        assert any("engine" in f.message for f in found)
        assert any(f.path.endswith("helper.py") for f in found)

    def test_clean_tree_passes(self, iso_contract):
        assert not findings_for("ISO001", FIXTURES / "iso_good")


class TestWireDataclassFixtures:
    def test_bad_wire_shapes_flag(self, monkeypatch):
        monkeypatch.setattr(contracts, "WIRE_DATACLASSES", {
            "repro.wire": ("Task", "Outcome", "Missing"),
        })
        found = findings_for("HRM001", FIXTURES / "hrm001_bad")
        messages = "\n".join(f.message for f in found)
        assert "socket" in messages  # unpicklable annotation
        assert "scratch" in messages  # unannotated mutable class level
        assert "not a\n@dataclass" in messages or "not a" in messages
        assert "Missing" in messages  # inventory entry without a class
        assert len(found) == 4

    def test_clean_wire_shape_passes(self, monkeypatch):
        monkeypatch.setattr(contracts, "WIRE_DATACLASSES", {
            "repro.wire": ("Task",),
        })
        assert not findings_for("HRM001", FIXTURES / "hrm001_good")


class TestWorkerHermeticityFixtures:
    def test_transitively_reachable_state_flags(self, monkeypatch):
        monkeypatch.setattr(contracts, "WORKER_ROOTS", ("repro.parallel",))
        found = findings_for("HRM002", FIXTURES / "hrm002_bad")
        messages = "\n".join(f.message for f in found)
        # All three hermeticity violations, found one import hop away
        # from the entry point.
        assert "global rebinding" in messages
        assert "os.environ" in messages
        assert "_CALLS.append" in messages
        assert all(f.path.endswith("state.py") for f in found)

    def test_hermetic_worker_passes(self, monkeypatch):
        monkeypatch.setattr(contracts, "WORKER_ROOTS", ("repro.parallel",))
        assert not findings_for("HRM002", FIXTURES / "hrm002_good")


class TestWireProtocolFixtures:
    def test_raw_send_and_outside_socket_flag(self, monkeypatch):
        monkeypatch.setattr(contracts, "WIRE_MODULES", ("repro.remote",))
        found = findings_for("WIRE001", FIXTURES / "wire_bad")
        assert len(found) == 2
        by_path = {f.path.rsplit("/", 1)[-1]: f for f in found}
        assert "pickle" in by_path["remote.py"].line_text
        assert "socket imported outside" in by_path["outsider.py"].message

    def test_encoder_fed_sends_pass(self, monkeypatch):
        monkeypatch.setattr(contracts, "WIRE_MODULES", ("repro.remote",))
        assert not findings_for("WIRE001", FIXTURES / "wire_good")


class TestSuppressionFixtures:
    def test_bare_and_unknown_pragmas_flag(self):
        report = lint_paths([FIXTURES / "sup_bad.py"])
        sup = [f for f in report.findings if f.rule == "SUP001"]
        assert len(sup) == 2
        # The bare pragma suppressed nothing: DET003 still fails.
        assert any(f.rule == "DET003" for f in report.findings)
        assert not report.suppressed

    def test_reasoned_pragma_suppresses_and_records_reason(self):
        report = lint_paths([FIXTURES / "sup_good.py"])
        assert report.ok
        assert len(report.suppressed) == 1
        finding, pragma = report.suppressed[0]
        assert finding.rule == "DET003"
        assert pragma.reason == "wall-clock display only"
