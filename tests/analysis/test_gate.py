"""The lint gate end to end: self-check, CLI, and the negative smoke.

The negative smoke test is the gate's own integrity check: inject a
violation into a scratch copy of the tree and assert
``scripts/check_invariants.py`` actually fails — a gate that cannot
fail is decoration, not CI.
"""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis.engine import lint_paths
from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]
GATE = REPO_ROOT / "scripts" / "check_invariants.py"
SRC_REPRO = Path(repro.__file__).parent


class TestSelfCheck:
    def test_linter_is_clean_on_its_own_package(self):
        report = lint_paths([SRC_REPRO / "analysis"])
        assert report.ok, report.render_human()
        # And clean without leaning on waivers: the linter holds itself
        # to the strictest reading of its own rules.
        assert not report.suppressed
        assert not report.baselined

    def test_committed_baseline_entries_all_carry_reasons(self):
        data = json.loads(
            (REPO_ROOT / "invariants-baseline.json").read_text()
        )
        assert data["version"] == 1
        for entry in data["entries"]:
            assert entry["reason"].strip(), entry


class TestLintCli:
    def test_lint_subcommand_is_wired(self):
        args = build_parser().parse_args(["lint", "--list-rules"])
        assert args.handler is not None
        assert args.list_rules

    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        code = main(["lint", str(tmp_path), "--no-baseline"])
        assert code == 0
        assert "OK —" in capsys.readouterr().out

    def test_lint_dirty_tree_exits_one_and_writes_json(self, tmp_path,
                                                       capsys):
        (tmp_path / "bad.py").write_text(
            "import time\n\n\ndef f():\n    return time.time()\n"
        )
        out = tmp_path / "report.json"
        code = main([
            "lint", str(tmp_path), "--no-baseline", "--json", str(out),
        ])
        assert code == 1
        assert "DET003" in capsys.readouterr().out
        assert json.loads(out.read_text())["ok"] is False

    def test_lint_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope"), "--no-baseline"]) == 2

    def test_stale_baseline_entry_fails_the_gate(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "fingerprint": "deadbeefdeadbeef",
                "rule": "DET003",
                "path": "ok.py",
                "reason": "fixed long ago; entry should have been pruned",
            }],
        }))
        code = main(["lint", str(tmp_path), "--baseline", str(baseline)])
        assert code == 1
        assert "stale baseline" in capsys.readouterr().out


class TestGateScript:
    def run_gate(self, *argv):
        return subprocess.run(
            [sys.executable, str(GATE), *argv],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )

    def test_gate_passes_on_the_committed_tree(self, tmp_path):
        artifact = tmp_path / "report.json"
        proc = self.run_gate("--json", str(artifact))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(artifact.read_text())["ok"] is True

    def test_gate_fails_on_an_injected_violation(self, tmp_path):
        """Negative smoke: doctor a copy, assert the gate goes red."""
        copy = tmp_path / "repro"
        shutil.copytree(SRC_REPRO, copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        victim = copy / "bgp" / "ip.py"
        victim.write_text(
            victim.read_text()
            + "\n\ndef _smoke_injected_violation():\n"
            + "    import time\n"
            + "    return time.time()\n"
        )
        artifact = tmp_path / "report.json"
        proc = self.run_gate(
            "--paths", str(tmp_path), "--json", str(artifact),
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "DET003" in proc.stdout
        report = json.loads(artifact.read_text())
        assert report["ok"] is False
        assert any(
            f["rule"] == "DET003" and f["path"].endswith("ip.py")
            for f in report["findings"]
        )
