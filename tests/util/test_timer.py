"""Tests for the stopwatch helper."""

from repro.util.timer import Stopwatch


def test_accumulates_laps():
    watch = Stopwatch()
    with watch:
        pass
    with watch:
        pass
    assert len(watch.laps) == 2
    assert watch.elapsed == sum(watch.laps)


def test_mean_lap_empty_is_zero():
    assert Stopwatch().mean_lap == 0.0


def test_mean_lap():
    watch = Stopwatch()
    with watch:
        pass
    assert watch.mean_lap == watch.elapsed
