"""Tests for the deterministic random service."""

from repro.util.rng import RandomService, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        for name in ("x", "y", "link/a/b"):
            seed = derive_seed(123, name)
            assert 0 <= seed < 2**64


class TestRandomService:
    def test_same_stream_same_draws(self):
        a = RandomService(5).stream("jitter")
        b = RandomService(5).stream("jitter")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_cached(self):
        service = RandomService(5)
        assert service.stream("x") is service.stream("x")

    def test_streams_independent_of_creation_order(self):
        """Adding a new consumer must not perturb existing streams."""
        first = RandomService(9)
        draw_before = first.stream("loss").random()
        second = RandomService(9)
        second.stream("extra-consumer")  # created before "loss"
        draw_after = second.stream("loss").random()
        assert draw_before == draw_after

    def test_child_service_differs_from_parent(self):
        parent = RandomService(3)
        child = parent.child("sub")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_fork_indexes_differ(self):
        service = RandomService(3)
        a = service.fork(0).stream("s").random()
        b = service.fork(1).stream("s").random()
        assert a != b

    def test_seed_property(self):
        assert RandomService(77).seed == 77
