"""Tests for stable hashing and salted commitments."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import salted_digest, stable_hash


class TestStableHash:
    def test_int_and_string_disjoint(self):
        assert stable_hash(1) != stable_hash("1")

    def test_bool_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_dict_order_independent(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_set_order_independent(self):
        assert stable_hash({3, 1, 2}) == stable_hash({2, 3, 1})

    def test_nested_structures(self):
        value = {"routes": [(1, "10.0.0.0"), (2, "10.1.0.0")], "ok": True}
        assert stable_hash(value) == stable_hash(dict(value))

    def test_tuple_vs_list_equivalent(self):
        # Both are sequences; canonical form intentionally unifies them.
        assert stable_hash((1, 2)) == stable_hash([1, 2])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_none_supported(self):
        assert stable_hash(None) == stable_hash(None)

    @given(st.lists(st.integers()))
    def test_deterministic_for_any_int_list(self, values):
        assert stable_hash(values) == stable_hash(list(values))

    @given(st.text(), st.text())
    def test_string_injective_on_samples(self, a, b):
        if a != b:
            assert stable_hash(a) != stable_hash(b)


class TestSaltedDigest:
    def test_salt_changes_digest(self):
        assert salted_digest("x", b"salt1") != salted_digest("x", b"salt2")

    def test_value_changes_digest(self):
        assert salted_digest("x", b"s") != salted_digest("y", b"s")

    def test_digest_is_32_bytes(self):
        assert len(salted_digest({"a": 1}, b"s")) == 32

    def test_commitment_reproducible(self):
        assert salted_digest(42, b"s") == salted_digest(42, b"s")
