"""Tests for id generation."""

from repro.util.ids import IdGenerator


def test_prefix_and_sequence():
    gen = IdGenerator("snap")
    assert gen.next() == "snap-1"
    assert gen.next() == "snap-2"


def test_independent_generators():
    a = IdGenerator("a")
    b = IdGenerator("b")
    a.next()
    assert b.next() == "b-1"


def test_next_int_interleaves_with_next():
    gen = IdGenerator("x")
    assert gen.next_int() == 1
    assert gen.next() == "x-2"
