"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.topology == "quickstart"
        assert args.inputs == 20

    def test_unknown_topology_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--topology", "atlantis"])

    def test_pipeline_flag(self):
        assert build_parser().parse_args(["campaign"]).pipeline is True
        args = build_parser().parse_args(["campaign", "--no-pipeline"])
        assert args.pipeline is False

    def test_solver_cache_flags(self):
        args = build_parser().parse_args(["campaign"])
        assert args.solver_cache_size == 4096
        assert args.share_solver_caches is True
        args = build_parser().parse_args([
            "campaign", "--solver-cache-size", "512",
            "--no-share-solver-caches",
        ])
        assert args.solver_cache_size == 512
        assert args.share_solver_caches is False

    def test_non_positive_cache_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--solver-cache-size", "0"]
            )

    def test_transport_flags(self):
        args = build_parser().parse_args(["campaign"])
        assert args.transport == "local"
        assert args.remote_workers is None
        args = build_parser().parse_args([
            "campaign", "--transport", "socket",
            "--remote-workers", "127.0.0.1:7411, 127.0.0.1:7412",
        ])
        assert args.transport == "socket"
        from repro.cli import _parse_remote_workers

        assert _parse_remote_workers(args.remote_workers) == [
            "127.0.0.1:7411", "127.0.0.1:7412",
        ]

    def test_unknown_transport_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--transport", "carrier-pigeon"]
            )

    def test_max_worker_failures_flag(self):
        args = build_parser().parse_args(["campaign"])
        assert args.max_worker_failures is None  # auto: all but one
        args = build_parser().parse_args(
            ["campaign", "--max-worker-failures", "0"]
        )
        assert args.max_worker_failures == 0
        args = build_parser().parse_args(
            ["campaign", "--max-worker-failures", "3"]
        )
        assert args.max_worker_failures == 3

    def test_negative_max_worker_failures_rejected(self):
        """-1 must not silently become strict fail-fast mode."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--max-worker-failures", "-1"]
            )

    def test_remote_worker_defaults(self):
        args = build_parser().parse_args(["remote-worker"])
        assert args.host == "127.0.0.1"
        assert args.port == 0


class TestCampaignCommand:
    def test_healthy_campaign_exit_zero(self, capsys):
        code = main([
            "campaign", "--topology", "quickstart", "--inputs", "4",
            "--nodes", "r2", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DiCE campaign summary" in out
        assert "no faults detected" in out

    def test_report_written(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        code = main([
            "campaign", "--topology", "quickstart", "--inputs", "3",
            "--nodes", "r2", "--report", str(path),
        ])
        assert code == 0
        data = json.loads(path.read_text())
        assert data["summary"]["snapshots_taken"] == 1

    def test_loopback_transport_campaign(self, capsys):
        code = main([
            "campaign", "--topology", "quickstart", "--inputs", "3",
            "--nodes", "r2", "--workers", "2", "--transport", "loopback",
        ])
        assert code == 0
        assert "via loopback transport" in capsys.readouterr().out

    def test_socket_transport_campaign_against_daemon(self, capsys):
        from repro.core.remote import WorkerServer

        with WorkerServer().start() as server:
            host, port = server.address
            code = main([
                "campaign", "--topology", "quickstart", "--inputs", "3",
                "--nodes", "r2", "--transport", "socket",
                "--remote-workers", f"{host}:{port}",
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert "via socket transport" in out
        assert "dispatch wire" in out

    def test_socket_without_workers_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="remote-workers"):
            main(["campaign", "--transport", "socket"])

    def test_fail_on_fault_with_bad_gadget(self, capsys):
        code = main([
            "campaign", "--topology", "bad-gadget", "--inputs", "3",
            "--nodes", "r1", "--horizon", "15", "--fail-on-fault",
        ])
        assert code == 1
        assert "policy_conflict" in capsys.readouterr().out


class TestOfflineCommand:
    def test_runs_and_reports(self, capsys):
        code = main(["offline-parser", "--budget", "60"])
        assert code == 0
        assert "offline parser test" in capsys.readouterr().out


class TestTopologyCommand:
    def test_demo27_rendering(self, capsys):
        code = main(["topology", "--topology", "demo27"])
        assert code == 0
        assert "27 routers" in capsys.readouterr().out

    def test_untiered_topology_message(self, capsys):
        code = main(["topology", "--topology", "bad-gadget"])
        assert code == 0
        assert "no tiered structure" in capsys.readouterr().out
