"""Deterministic fault injection for worker transports.

:class:`ChaosTransport` wraps any real :class:`~repro.core.parallel.
WorkerTransport` (loopback, socket, local pools) and kills scripted
worker slots at exact protocol points, so failover tests are
reproducible instead of racing a real process kill:

* ``PRE_DISPATCH`` — the slot dies before the task frame leaves the
  orchestrator; the worker never sees the task;
* ``MID_TASK`` — the task reaches the worker (which may have mutated
  its solver-cache replica!) but the response is lost;
* ``CHUNK_COMMIT_GAP`` — the slot dies after receiving a merge
  epoch's chunk frames but before the sealing commit (push-capable
  transports only);
* ``CYCLE_SYNC`` — the slot dies exactly when a task carrying a
  cycle-boundary merge sync (``cache_sync.merge_id > 0``) is
  dispatched to it.

Kill occurrences are counted per ``(point, slot)`` in dispatch order,
which the engine keeps deterministic — so a :class:`Kill` script
always fires at the same task at any worker count.

A killed slot fails fast with :class:`~repro.core.remote.
WorkerDiedError` (the engine's failover trigger) and is retired on the
inner transport too (``discard_slot``).  ``on_kill`` lets socket tests
take down the *real* daemon at the scripted moment, so genuine
connection teardown is exercised, while the synthetic fail-fast keeps
the test deterministic regardless of TCP timing.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass

from repro.core.remote import WorkerDiedError

PRE_DISPATCH = "pre-dispatch"
MID_TASK = "mid-task"
CHUNK_COMMIT_GAP = "chunk-commit-gap"
CYCLE_SYNC = "cycle-sync"

KILL_POINTS = (PRE_DISPATCH, MID_TASK, CHUNK_COMMIT_GAP, CYCLE_SYNC)


@dataclass(frozen=True)
class Kill:
    """Kill ``slot`` at the ``occurrence``-th hit of ``point``."""

    point: str
    slot: int
    occurrence: int = 1


class ChaosTransport:
    """A worker transport with scripted, deterministic slot deaths."""

    def __init__(self, inner, kills, on_kill=None):
        unknown = {kill.point for kill in kills} - set(KILL_POINTS)
        if unknown:
            raise ValueError(
                f"unknown kill points {sorted(unknown)}; "
                f"choose from {KILL_POINTS}"
            )
        self.inner = inner
        self.slots = inner.slots
        self.supports_push = getattr(inner, "supports_push", False)
        self._kills = list(kills)
        self._on_kill = on_kill
        self._counts: dict[tuple[str, int], int] = {}
        self.dead: set[int] = set()
        self.kill_log: list[tuple[str, int]] = []

    # -- passthroughs the engine/benchmarks read --

    @property
    def bytes_sent(self) -> int:
        return getattr(self.inner, "bytes_sent", 0)

    @property
    def bytes_received(self) -> int:
        return getattr(self.inner, "bytes_received", 0)

    def worker_state(self, slot: int):
        return self.inner.worker_state(slot)

    def slot_label(self, slot: int) -> str:
        label = getattr(self.inner, "slot_label", None)
        return label(slot) if label is not None else f"chaos slot {slot}"

    def discard_slot(self, slot: int) -> None:
        self.dead.add(slot)
        discard = getattr(self.inner, "discard_slot", None)
        if discard is not None:
            discard(slot)

    # -- kill machinery --

    def _tripped(self, point: str, slot: int) -> bool:
        key = (point, slot)
        self._counts[key] = self._counts.get(key, 0) + 1
        count = self._counts[key]
        for kill in self._kills:
            if (kill.point, kill.slot, kill.occurrence) == (
                    point, slot, count):
                self._die(point, slot)
                return True
        return False

    def _die(self, point: str, slot: int) -> None:
        self.kill_log.append((point, slot))
        if self._on_kill is not None:
            self._on_kill(slot)
        self.discard_slot(slot)

    def _death_future(self, slot: int) -> Future:
        future: Future = Future()
        future.set_exception(
            WorkerDiedError(
                f"chaos killed {self.slot_label(slot)}",
                address=self.slot_label(slot),
            )
        )
        return future

    # -- WorkerTransport surface --

    def submit(self, slot: int, task) -> Future:
        if slot in self.dead:
            return self._death_future(slot)
        sync = getattr(task, "cache_sync", None)
        if (sync is not None and sync.merge_id
                and self._tripped(CYCLE_SYNC, slot)):
            return self._death_future(slot)
        if self._tripped(PRE_DISPATCH, slot):
            return self._death_future(slot)
        inner_future = self.inner.submit(slot, task)
        if self._tripped(MID_TASK, slot):
            # The worker ran (or is running) the task; the response is
            # lost.  The inner future is deliberately abandoned.
            return self._death_future(slot)
        return inner_future

    def push_chunk(self, token: str, epoch: int, seq: int,
                   packed: bytes) -> int:
        return self.inner.push_chunk(token, epoch, seq, packed)

    def push_commit(self, token: str, epoch: int, chunks: int) -> int:
        # The gap between a merge epoch's chunks and its commit: slots
        # killed here hold staged-but-unsealed events.
        for slot in range(self.slots):
            if slot not in self.dead:
                self._tripped(CHUNK_COMMIT_GAP, slot)
        return self.inner.push_commit(token, epoch, chunks)

    def close(self) -> None:
        self.inner.close()
