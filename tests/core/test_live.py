"""Tests for the live-system wrapper."""

from repro.bgp.config import AddNetwork, RemoveNetwork
from repro.bgp.ip import Prefix


class TestBuildAndRun:
    def test_routers_accessor(self, live3):
        assert [router.name for router in live3.routers()] == [
            "r1", "r2", "r3",
        ]

    def test_converge_reaches_fixpoint(self, live3):
        when = live3.converge()
        assert when > 0
        assert live3.total_routes() == 9  # 3 prefixes x 3 routers

    def test_converge_is_idempotent(self, converged3):
        routes = converged3.total_routes()
        converged3.converge()
        assert converged3.total_routes() == routes

    def test_originated_prefixes(self, live3):
        assert live3.originated_prefixes() == [
            Prefix("10.1.0.0/16"), Prefix("10.2.0.0/16"),
            Prefix("10.3.0.0/16"),
        ]


class TestOperatorActions:
    def test_apply_change_updates_configs_view(self, converged3):
        new_prefix = Prefix("10.50.0.0/16")
        converged3.apply_change("r1", AddNetwork(new_prefix))
        config = next(c for c in converged3.configs if c.name == "r1")
        assert new_prefix in config.networks
        # The trusted baseline must NOT move.
        initial = next(
            c for c in converged3.initial_configs if c.name == "r1"
        )
        assert new_prefix not in initial.networks

    def test_scheduled_change_fires(self, converged3):
        new_prefix = Prefix("10.51.0.0/16")
        at = converged3.network.sim.now + 5.0
        converged3.schedule_change(at, "r2", AddNetwork(new_prefix))
        converged3.run(until=at + 10)
        assert converged3.router("r1").loc_rib.get(new_prefix) is not None

    def test_churn_flips_prefix(self, converged3):
        prefix = Prefix("10.52.0.0/16")
        start = converged3.network.sim.now
        converged3.enable_churn("r1", prefix, period=5.0,
                                start_at=start + 1.0)
        converged3.run(until=start + 20)
        assert converged3.churn_events >= 3

    def test_remove_network_withdraws(self, converged3):
        converged3.apply_change("r3", RemoveNetwork(Prefix("10.3.0.0/16")))
        converged3.converge()
        assert converged3.router("r1").loc_rib.get(
            Prefix("10.3.0.0/16")
        ) is None
