"""Tests for the parallel campaign engine.

The load-bearing property is determinism: a campaign's fault reports
and per-node exploration results must not depend on the worker count.
Everything else (pickling, ordering, claims flattening) supports it.
"""

import pickle

import pytest

from campaign_helpers import faulty_live, node_fingerprint, report_fingerprint
from repro import quickstart_system
from repro.bgp.ip import Prefix
from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.parallel import (
    ExplorationTask,
    InlineTransport,
    ParallelCampaignEngine,
    claims_from_spec,
    claims_to_spec,
    resolve_workers,
    run_exploration_task,
)
from repro.core.sharing import SharingRegistry


def run_campaign(workers, cycles=2, inputs=6):
    dice = DiceOrchestrator(faulty_live(), default_property_suite())
    return dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=inputs,
            cycles=cycles,
            seed=9,
            workers=workers,
        )
    )


class TestDeterminism:
    def test_worker_count_does_not_change_results(self):
        """Same seed => identical fault reports at workers=1 vs 4."""
        serial = run_campaign(workers=1)
        parallel = run_campaign(workers=4)
        assert serial.reports, "campaign should detect the seeded faults"
        assert report_fingerprint(serial) == report_fingerprint(parallel)
        assert node_fingerprint(serial) == node_fingerprint(parallel)
        assert serial.fault_classes_found() == parallel.fault_classes_found()
        assert serial.inputs_explored == parallel.inputs_explored
        assert serial.snapshots_taken == parallel.snapshots_taken
        # The per-node cache handoff must evolve identically too.
        assert serial.solver_cache_hits == parallel.solver_cache_hits
        assert serial.solver_cache_misses == parallel.solver_cache_misses

    def test_workers_recorded_on_result(self):
        result = run_campaign(workers=2, cycles=1, inputs=2)
        assert result.workers == 2

    def test_stop_after_first_fault_counters_match_serial(self):
        """Early stop truncates the parallel merge to exactly what the
        serial loop would have captured and explored."""

        def stopping_campaign(workers):
            dice = DiceOrchestrator(faulty_live(),
                                    default_property_suite())
            return dice.run_campaign(
                OrchestratorConfig(
                    inputs_per_node=4,
                    seed=9,
                    workers=workers,
                    stop_after_first_fault=True,
                )
            )

        serial = stopping_campaign(1)
        parallel = stopping_campaign(4)
        assert serial.reports
        assert report_fingerprint(serial) == report_fingerprint(parallel)
        assert serial.snapshots_taken == parallel.snapshots_taken
        assert serial.inputs_explored == parallel.inputs_explored
        assert len(serial.node_reports) == len(parallel.node_reports)


class TestExplorationTask:
    def make_task(self, index=0):
        live = quickstart_system(seed=7)
        live.converge()
        snapshot = live.coordinator.capture("r2")
        claims = SharingRegistry.from_configs(live.initial_configs)
        return ExplorationTask(
            index=index,
            cycle=0,
            node="r2",
            snapshot=snapshot,
            suite=default_property_suite(),
            claims=claims_to_spec(claims),
            seed=13,
            inputs=3,
            horizon=1.0,
            detected_at=live.network.sim.now,
        )

    def test_pickle_round_trip(self):
        task = self.make_task()
        restored = pickle.loads(pickle.dumps(task))
        assert restored.node == task.node
        assert restored.seed == task.seed
        assert restored.claims == task.claims
        assert restored.snapshot.snapshot_id == task.snapshot.snapshot_id
        assert sorted(restored.snapshot.checkpoints) == sorted(
            task.snapshot.checkpoints
        )
        # The restored task must be executable, not just structurally
        # equal: run it and compare against the original.
        original = run_exploration_task(task)
        replayed = run_exploration_task(restored)
        assert replayed.report.executions == original.report.executions
        assert replayed.report.unique_paths == original.report.unique_paths

    def test_exploration_config_carries_batch_parameters(self):
        config = self.make_task().exploration_config()
        assert config.node == "r2"
        assert config.inputs == 3
        assert config.seed == 13

    def test_engine_returns_outcomes_in_task_order(self):
        tasks = [self.make_task(index=i) for i in range(3)]
        with ParallelCampaignEngine(workers=2) as engine:
            outcomes = engine.run(list(reversed(tasks)))
        assert [outcome.index for outcome in outcomes] == [0, 1, 2]


class TestClaimSpec:
    def test_round_trip(self):
        registry = SharingRegistry()
        registry.claim_origin(65001, Prefix("10.1.0.0/16"))
        registry.claim_origin(65002, Prefix("10.1.0.0/16"))
        registry.claim_origin(65003, Prefix("10.3.0.0/16"))
        spec = claims_to_spec(registry)
        rebuilt = claims_from_spec(spec)
        assert rebuilt.claimed_origins(Prefix("10.1.0.0/16")) == {
            65001, 65002,
        }
        assert rebuilt.claimed_origins(Prefix("10.3.0.0/16")) == {65003}
        assert claims_to_spec(rebuilt) == spec


class TestResolveWorkers:
    def test_none_means_cpu_count(self):
        assert resolve_workers(None) >= 1

    @pytest.mark.parametrize("requested,expected", [(0, 1), (1, 1), (3, 3)])
    def test_floor_is_one(self, requested, expected):
        assert resolve_workers(requested) == expected

    def test_prefers_affinity_mask_over_cpu_count(self, monkeypatch):
        """Inside a cgroup-limited container os.cpu_count() reports the
        host's CPUs; the affinity mask is what the pool may use."""
        import repro.core.parallel as parallel_module

        if not hasattr(parallel_module.os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(
            parallel_module.os, "sched_getaffinity", lambda pid: {0, 1}
        )
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: 64)
        assert resolve_workers(None) == 2

    def test_explicit_count_bypasses_affinity(self, monkeypatch):
        import repro.core.parallel as parallel_module

        monkeypatch.setattr(
            parallel_module.os, "cpu_count",
            lambda: (_ for _ in ()).throw(AssertionError("not consulted")),
        )
        assert resolve_workers(5) == 5


class TestInlineSubmit:
    """workers<=1 submit must capture task errors but never
    control-flow exceptions (Ctrl-C has to abort the campaign)."""

    def test_task_errors_land_in_the_future(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def failing(task, replicas=None):
            raise ValueError("exploration blew up")

        monkeypatch.setattr(
            parallel_module, "run_exploration_task", failing
        )
        future = InlineTransport().submit(0, None)
        with pytest.raises(ValueError, match="blew up"):
            future.result()

    @pytest.mark.parametrize("interrupt", [KeyboardInterrupt, SystemExit])
    def test_control_flow_exceptions_reraise(self, monkeypatch, interrupt):
        import repro.core.parallel as parallel_module

        def interrupted(task, replicas=None):
            raise interrupt

        monkeypatch.setattr(
            parallel_module, "run_exploration_task", interrupted
        )
        engine = ParallelCampaignEngine(workers=1)
        with pytest.raises(interrupt):
            engine.submit(
                ExplorationTask(
                    index=0, cycle=0, node="r1", snapshot=None,
                    suite=default_property_suite(), claims=(), seed=0,
                )
            )
