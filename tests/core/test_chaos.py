"""Worker failover under deterministic fault injection.

The acceptance contract: a campaign that loses a worker slot at *any*
protocol point — before dispatch, mid-task, in the gap between a merge
epoch's chunk and commit frames, or exactly at a cycle-boundary sync —
completes with fault reports and solver-cache ``state_fingerprint``s
bit-identical to a serial run, and a campaign losing more slots than
``max_worker_failures`` fails with a named error listing every dead
worker (never a hang or a bare cancellation).

Three layers: engine-level failover mechanics against a stub
transport, replica reconstruction by event-log replay in isolation,
and full campaigns over loopback and (marked ``slow_socket``) real
socket daemons wrapped in the :class:`chaos.ChaosTransport` harness.
"""

import pytest

from campaign_helpers import faulty_live, node_fingerprint, report_fingerprint
from chaos import (
    CHUNK_COMMIT_GAP,
    CYCLE_SYNC,
    MID_TASK,
    PRE_DISPATCH,
    ChaosTransport,
    Kill,
)
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.parallel import (
    CacheSync,
    ExplorationTask,
    ParallelCampaignEngine,
    ReplicaStore,
    SolverCacheCoordinator,
    WorkerFailoverError,
    is_transport_fatal,
)
from repro.core.remote import (
    LoopbackTransport,
    SocketTransport,
    WorkerDiedError,
    WorkerServer,
)

# The quickstart faulty system explores nodes r1, r2, r3 over two
# slots, so sticky routing pins r1,r3 -> slot 0 and r2 -> slot 1; the
# Kill scripts below are written against that layout.
KILL_SCRIPTS = {
    # r2's first task never leaves the orchestrator.
    "pre-dispatch": Kill(PRE_DISPATCH, slot=1, occurrence=1),
    # r3's first task runs on the worker (replica mutated!) but the
    # response is lost.
    "mid-task": Kill(MID_TASK, slot=0, occurrence=2),
    # Slot 1 dies holding cycle 1's staged-but-unsealed merge chunks.
    "chunk-commit-gap": Kill(CHUNK_COMMIT_GAP, slot=1, occurrence=1),
    # Slot 0 dies exactly when cycle 2's first merge-sync task lands.
    "cycle-sync": Kill(CYCLE_SYNC, slot=0, occurrence=1),
}


def run_campaign(transport_factory=None, stop=False, **kwargs):
    dice = DiceOrchestrator(faulty_live(), default_property_suite())
    return dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=4,
            cycles=2,
            seed=9,
            stop_after_first_fault=stop,
            transport_factory=transport_factory,
            **kwargs,
        )
    )


def campaign_fingerprint(result):
    return (
        report_fingerprint(result),
        node_fingerprint(result),
        result.solver_cache_hits,
        result.solver_cache_misses,
        result.solver_cache_merged_hits,
        result.cache_state_fingerprints,
    )


@pytest.fixture(scope="module")
def serial_reference():
    return run_campaign(workers=1, pipeline=False)


# -- engine-level failover mechanics ------------------------------------------


class StubTransport:
    """Two resolved-future slots; scripted slots die on every submit."""

    supports_push = False

    def __init__(self, slots=2, dying=()):
        self.slots = slots
        self.dying = set(dying)
        self.discarded = set()
        self.submitted = []

    def submit(self, slot, task):
        self.submitted.append((slot, task.node))
        future = Future()
        if slot in self.dying:
            future.set_exception(
                WorkerDiedError(f"stub slot {slot} died",
                                address=f"stub-{slot}")
            )
        else:
            future.set_result((slot, task.node))
        return future

    def slot_label(self, slot):
        return f"stub slot {slot}"

    def discard_slot(self, slot):
        self.discarded.add(slot)

    def close(self):
        pass


def stub_task(index, node, cache_sync=None):
    return ExplorationTask(
        index=index, cycle=0, node=node, snapshot=None,
        suite=default_property_suite(), claims=(), seed=0,
        cache_sync=cache_sync,
    )


class TestEngineFailover:
    def test_dead_slot_tasks_requeue_on_survivor(self):
        transport = StubTransport(dying={0})
        engine = ParallelCampaignEngine(transport=transport)
        outcomes = engine.run([stub_task(0, "a"), stub_task(1, "b")])
        # "a" was routed to slot 0, died, and re-ran on slot 1.
        assert outcomes == [(1, "a"), (1, "b")]
        assert engine.tasks_requeued == 1
        assert len(engine.failures) == 1
        assert engine.failures[0].worker == "stub slot 0"
        assert transport.discarded == {0}
        # The dead slot never hosts a new node again.
        assert engine.slot_for("c") == 1

    def test_all_slots_dead_is_a_named_error(self):
        engine = ParallelCampaignEngine(
            transport=StubTransport(dying={0, 1})
        )
        with pytest.raises(WorkerFailoverError,
                           match="no surviving worker slots") as caught:
            engine.run([stub_task(0, "a")])
        assert caught.value.dead_workers == ["stub slot 0", "stub slot 1"]

    def test_failover_budget_zero_fails_on_first_death(self):
        engine = ParallelCampaignEngine(
            transport=StubTransport(dying={0}), max_worker_failures=0
        )
        with pytest.raises(WorkerFailoverError,
                           match="max_worker_failures=0") as caught:
            engine.run([stub_task(0, "a")])
        assert "stub slot 0" in str(caught.value)

    def test_synced_task_needs_a_coordinator_to_requeue(self):
        engine = ParallelCampaignEngine(transport=StubTransport(dying={0}))
        sync = CacheSync(node="a", token="t", max_entries=4,
                         base_generation=0)
        with pytest.raises(WorkerFailoverError,
                           match="no cache coordinator"):
            engine.run([stub_task(0, "a", cache_sync=sync)])

    def test_task_errors_are_not_requeued(self):
        """A deterministic task failure would fail on every slot;
        retrying it would only mask the bug."""
        transport = LoopbackTransport(slots=2)
        engine = ParallelCampaignEngine(transport=transport)
        broken = stub_task(0, "a")  # no snapshot: the task itself fails
        from repro.core.remote import RemoteWorkerError

        with pytest.raises(RemoteWorkerError, match="ValueError"):
            engine.run([broken])
        assert engine.tasks_requeued == 0
        assert engine.failures == []

    def test_negative_failure_budget_is_rejected(self):
        """The library layer matches the CLI: -1 must error, not
        silently become strict fail-fast mode."""
        with pytest.raises(ValueError, match="max_worker_failures"):
            ParallelCampaignEngine(
                transport=StubTransport(), max_worker_failures=-1
            )

    def test_strict_mode_records_no_recovery_history(self):
        """With failover disabled (or a single slot) the first death
        fails the campaign before any rebuild, so the coordinator must
        not accumulate history bytes nobody can consume."""
        coordinator = SolverCacheCoordinator(["n1"], max_entries=8)
        engine = ParallelCampaignEngine(
            transport=StubTransport(), max_worker_failures=0
        )
        engine.attach_coordinator(coordinator)
        assert coordinator._record_history is False
        single = ParallelCampaignEngine(workers=1)
        relaxed = SolverCacheCoordinator(["n1"], max_entries=8)
        single.attach_coordinator(relaxed)
        assert relaxed._record_history is False
        tolerant = ParallelCampaignEngine(transport=StubTransport())
        enabled = SolverCacheCoordinator(["n1"], max_entries=8)
        tolerant.attach_coordinator(enabled)
        assert enabled._record_history is True

    def test_fatal_classification(self):
        assert is_transport_fatal(WorkerDiedError("gone"))
        assert is_transport_fatal(BrokenProcessPool("pool died"))
        assert not is_transport_fatal(ValueError("task bug"))
        assert not is_transport_fatal(RuntimeError("task bug"))


# -- replica reconstruction by event-log replay -------------------------------


class TestReplicaRecovery:
    def seed_coordinator(self, max_entries=8):
        """One cycle of work for two nodes, through a worker store."""
        coordinator = SolverCacheCoordinator(["n1", "n2"],
                                             max_entries=max_entries)
        coordinator.enable_recovery_history()
        store = ReplicaStore()
        for node, keys in (("n1", [(1,), (2,)]), ("n2", [(3,), (4,)])):
            replica = store.replica_for(coordinator.sync_for(node, slot=0))
            for key in keys:
                replica.store_model(key, {"x": key[0]})
            coordinator.absorb(replica.take_delta(node))
        coordinator.end_cycle()
        return coordinator

    def test_rebuilt_replica_is_bit_identical_to_the_mirror(self):
        coordinator = self.seed_coordinator()
        fresh = ReplicaStore()
        rebuilt = fresh.replica_for(
            coordinator.recovery_sync_for("n1", slot=1)
        )
        assert (
            rebuilt.state_fingerprint()
            == coordinator.cache_for("n1").state_fingerprint()
        )
        assert coordinator.rebuilds == 1
        # The cross-node merge arrived with the rebuild: n2's entries
        # are present and attributed as merged.
        assert rebuilt.lookup_model((3,)) == {"x": 3}
        assert rebuilt.is_merged((3,))
        assert not rebuilt.is_merged((1,))

    def test_rebuilt_replica_continues_the_delta_protocol(self):
        """Post-rebuild generations line up, so the next outcome's
        delta replays onto the mirror without a sync error."""
        coordinator = self.seed_coordinator()
        fresh = ReplicaStore()
        rebuilt = fresh.replica_for(
            coordinator.recovery_sync_for("n1", slot=1)
        )
        rebuilt.store_model((9,), {"x": 9})
        coordinator.absorb(rebuilt.take_delta("n1"))  # must not raise
        assert coordinator.cache_for("n1").lookup_model((9,)) == {"x": 9}

    def test_rebuild_replays_fifo_eviction(self):
        """Eviction order is state: a tiny cache's rebuild must walk
        the same evictions the original replica performed."""
        coordinator = self.seed_coordinator(max_entries=2)
        fresh = ReplicaStore()
        rebuilt = fresh.replica_for(
            coordinator.recovery_sync_for("n1", slot=1)
        )
        assert (
            rebuilt.state_fingerprint()
            == coordinator.cache_for("n1").state_fingerprint()
        )

    def test_recovery_before_any_history_is_a_fresh_cache(self):
        coordinator = SolverCacheCoordinator(["n1"], max_entries=8)
        coordinator.enable_recovery_history()
        fresh = ReplicaStore()
        rebuilt = fresh.replica_for(
            coordinator.recovery_sync_for("n1", slot=0)
        )
        assert rebuilt.generation == 0
        assert len(rebuilt) == 0

    def test_recovery_without_history_recording_is_refused(self):
        """A rebuild from a log that missed early events would be
        silently wrong — the coordinator must refuse instead."""
        coordinator = SolverCacheCoordinator(["n1"], max_entries=8)
        with pytest.raises(RuntimeError, match="recovery history"):
            coordinator.recovery_sync_for("n1", slot=0)


# -- scripted chaos campaigns: loopback ---------------------------------------


class TestLoopbackChaosCampaigns:
    @pytest.mark.parametrize("point", sorted(KILL_SCRIPTS))
    def test_kill_at_protocol_point_matches_serial(
        self, serial_reference, point
    ):
        chaos = {}

        def factory():
            chaos["transport"] = ChaosTransport(
                LoopbackTransport(slots=2), [KILL_SCRIPTS[point]]
            )
            return chaos["transport"]

        result = run_campaign(transport_factory=factory)
        assert serial_reference.reports
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )
        assert chaos["transport"].kill_log  # the script really fired
        assert result.worker_failures == 1
        assert result.tasks_requeued >= 1
        assert result.cache_replica_rebuilds >= 1
        assert len(result.dead_workers) == 1
        assert "loopback slot" in result.dead_workers[0]

    def test_kill_without_pipeline_matches_serial(self, serial_reference):
        def factory():
            return ChaosTransport(
                LoopbackTransport(slots=2), [KILL_SCRIPTS["mid-task"]]
            )

        result = run_campaign(transport_factory=factory, pipeline=False)
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )
        assert result.worker_failures == 1

    def test_exceeding_the_budget_names_every_dead_worker(self):
        def factory():
            return ChaosTransport(
                LoopbackTransport(slots=2),
                [Kill(PRE_DISPATCH, slot=0, occurrence=1),
                 Kill(PRE_DISPATCH, slot=1, occurrence=1)],
            )

        with pytest.raises(WorkerFailoverError) as caught:
            run_campaign(transport_factory=factory)
        assert len(caught.value.dead_workers) == 2
        assert "loopback slot 0" in str(caught.value)
        assert "loopback slot 1" in str(caught.value)

    def test_failover_disabled_fails_on_first_death(self):
        def factory():
            return ChaosTransport(
                LoopbackTransport(slots=2), [KILL_SCRIPTS["pre-dispatch"]]
            )

        with pytest.raises(WorkerFailoverError,
                           match="max_worker_failures=0"):
            run_campaign(transport_factory=factory, max_worker_failures=0)


# -- scripted chaos campaigns: real socket daemons ----------------------------


@pytest.mark.slow_socket
@pytest.mark.timeout(300)
class TestSocketChaosCampaigns:
    @pytest.mark.parametrize("point", sorted(KILL_SCRIPTS))
    def test_kill_at_protocol_point_matches_serial(
        self, serial_reference, point
    ):
        """The same four kill scripts over real TCP daemons, with the
        scripted kill also taking the daemon process's server down —
        so genuine connection teardown (broken pipes, half-closed
        reads, skipped broadcasts) is exercised, not just the
        synthetic fail-fast."""
        with WorkerServer().start() as alpha, WorkerServer().start() as beta:
            servers = [alpha, beta]
            addresses = [f"{host}:{port}" for host, port in
                         (alpha.address, beta.address)]

            def factory():
                return ChaosTransport(
                    SocketTransport(addresses),
                    [KILL_SCRIPTS[point]],
                    on_kill=lambda slot: servers[slot].close(),
                )

            result = run_campaign(transport_factory=factory)
            assert campaign_fingerprint(result) == campaign_fingerprint(
                serial_reference
            )
            assert result.worker_failures == 1
            assert result.tasks_requeued >= 1
            # The dead worker is named by its real address.
            survivor = {0: addresses[1], 1: addresses[0]}
            assert result.dead_workers != [
                survivor[KILL_SCRIPTS[point].slot]
            ]
