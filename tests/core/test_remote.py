"""Tests for the remote worker transport layer.

Three layers: the frame codec and worker-state protocol in isolation,
end-to-end campaign determinism over the loopback and socket
transports (the ISSUE's bit-identical-to-serial contract), and
abort/cleanup semantics — ``stop_after_first_fault`` and ``close()``
across local-pool, loopback, and socket transports.
"""

import socket
import threading

import pytest

from campaign_helpers import faulty_live, node_fingerprint, report_fingerprint
from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.parallel import (
    ExplorationTask,
    LocalPoolTransport,
    ParallelCampaignEngine,
    SolverCacheCoordinator,
)
from repro.core.remote import (
    LoopbackTransport,
    RemoteWorkerError,
    RemoteWorkerState,
    SocketTransport,
    WorkerServer,
    decode_frame,
    encode_frame,
    parse_address,
)


def run_campaign(workers=1, cycles=2, inputs=4, stop=False, **kwargs):
    dice = DiceOrchestrator(faulty_live(), default_property_suite())
    return dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=inputs,
            cycles=cycles,
            seed=9,
            workers=workers,
            stop_after_first_fault=stop,
            **kwargs,
        )
    )


def campaign_fingerprint(result):
    return (
        report_fingerprint(result),
        node_fingerprint(result),
        result.solver_cache_hits,
        result.solver_cache_misses,
        result.solver_cache_merged_hits,
        result.cache_state_fingerprints,
    )


@pytest.fixture(scope="module")
def serial_reference():
    return run_campaign(workers=1, pipeline=False)


class TestFrameCodec:
    def test_round_trip(self):
        message = ("task", 7, {"payload": b"\x00" * 1000})
        assert decode_frame(encode_frame(message)) == message

    def test_length_prefix_mismatch_is_loud(self):
        frame = encode_frame(("ping",))
        with pytest.raises(ValueError, match="length prefix"):
            decode_frame(frame + b"trailing")

    def test_truncated_frame_is_loud(self):
        with pytest.raises(ValueError):
            decode_frame(b"\x00")

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7411") == ("127.0.0.1", 7411)
        assert parse_address(("host", 80)) == ("host", 80)
        with pytest.raises(ValueError, match="host:port"):
            parse_address("7411")


class TestRemoteWorkerState:
    def test_ping(self):
        state = RemoteWorkerState()
        assert state.handle(("ping",)) == ("pong", 0)

    def test_task_failure_becomes_error_frame(self):
        state = RemoteWorkerState()
        broken = ExplorationTask(
            index=0, cycle=0, node="r1", snapshot=None,
            suite=default_property_suite(), claims=(), seed=0,
        )
        kind, request_id, summary, trace = state.handle(
            ("task", 5, broken)
        )
        assert kind == "error"
        assert request_id == 5
        assert "ValueError" in summary
        assert "snapshot" in trace

    def test_control_flow_exceptions_propagate(self, monkeypatch):
        """Ctrl-C stops the daemon; it must not become an error frame."""
        import repro.core.remote as remote_module

        def interrupted(task, replicas=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(remote_module, "run_task", interrupted)
        broken = ExplorationTask(
            index=0, cycle=0, node="r1", snapshot=None,
            suite=default_property_suite(), claims=(), seed=0,
        )
        with pytest.raises(KeyboardInterrupt):
            RemoteWorkerState().handle(("task", 1, broken))

    def test_unknown_kind_is_loud(self):
        with pytest.raises(ValueError, match="unknown message"):
            RemoteWorkerState().handle(("bogus",))

    def test_concurrent_campaign_is_rejected_not_rescoped(self):
        """A second live connection's campaign must not wipe the warm
        replicas out from under the first; sequential hand-off (old
        connection gone) still rescopes silently."""
        state = RemoteWorkerState()
        state.handle(("chunk", "campaign-A", 1, 0, b"x"), client=1)
        with pytest.raises(RuntimeError, match="another campaign"):
            state.handle(("chunk", "campaign-B", 1, 0, b"y"), client=2)
        assert state.replicas.token == "campaign-A"
        # Connection 1 closes: its claim lifts, B may take over.
        state.release(1)
        state.handle(("chunk", "campaign-B", 1, 0, b"y"), client=2)
        assert state.replicas.token == "campaign-B"

    def test_stale_release_cannot_evict_a_successor_claim(self):
        """Regression: client keys were once ``id(conn)``; CPython
        recycles addresses, so a dead connection's late ``release()``
        could pop the claim of a successor that had adopted its id,
        opening a silent campaign-takeover window.  Keys are allocated
        by a counter now, so a stale release never touches any later
        client's claim."""
        state = RemoteWorkerState()
        state.handle(("chunk", "campaign-A", 1, 0, b"x"), client=1)
        # Connection 1 is replaced by connection 2 (distinct key), then
        # 1's handler thread finally-releases late.
        state.handle(("chunk", "campaign-A", 1, 1, b"y"), client=2)
        state.release(1)
        # Connection 2's claim must still guard the warm store.
        with pytest.raises(RuntimeError, match="another campaign"):
            state.handle(("chunk", "campaign-B", 1, 0, b"z"), client=3)
        assert state.replicas.token == "campaign-A"

    def test_server_client_keys_are_never_reused(self):
        server = WorkerServer()
        try:
            keys = [next(server._client_keys) for _ in range(3)]
        finally:
            server.close()
        assert keys == [1, 2, 3]


class TestLoopbackCampaigns:
    def test_matches_serial_bit_for_bit(self, serial_reference):
        loopback = run_campaign(workers=2, transport="loopback")
        assert serial_reference.reports
        assert campaign_fingerprint(loopback) == campaign_fingerprint(
            serial_reference
        )
        assert loopback.transport == "loopback"

    def test_wire_and_push_bytes_counted(self):
        result = run_campaign(workers=2, transport="loopback")
        assert result.wire_bytes_sent > 0
        assert result.wire_bytes_received > 0
        # Two cycles with sharing: the second cycle's merge events
        # travelled over the push channel, not inside the syncs.
        assert result.cache_bytes_pushed > 0
        assert result.cache_bytes_shipped() > 0

    def test_push_channel_replaces_sync_blobs(self):
        """With a push channel, syncs reference epochs but never carry
        the blob — the bytes moved off the task dispatch path."""
        transport = LoopbackTransport(slots=2)
        engine = ParallelCampaignEngine(transport=transport)
        coordinator = SolverCacheCoordinator(["n1", "n2"], max_entries=64)
        coordinator.attach_push_channel(engine.push_channel)
        for number, node in enumerate(("n1", "n2"), start=1):
            slot = engine.slot_for(node)
            replica = transport.worker_state(slot).replicas.replica_for(
                coordinator.sync_for(node, slot=slot)
            )
            replica.store_model((number,), {"x": number})
            coordinator.absorb(replica.take_delta(node))
        assert coordinator.bytes_pushed > 0  # chunks streamed mid-cycle
        coordinator.end_cycle()
        sync = coordinator.sync_for("n1", slot=engine.slot_for("n1"))
        assert sync.merge_id == 1
        assert sync.merge_blob is None
        replica = transport.worker_state(
            engine.slot_for("n1")
        ).replicas.replica_for(sync)
        assert replica.models_cached == 2  # both nodes' entries arrived

    def test_worker_error_propagates_with_traceback(self):
        transport = LoopbackTransport(slots=1)
        broken = ExplorationTask(
            index=0, cycle=0, node="r1", snapshot=None,
            suite=default_property_suite(), claims=(), seed=0,
        )
        future = transport.submit(0, broken)
        with pytest.raises(RemoteWorkerError, match="ValueError"):
            future.result()

    def test_closed_transport_refuses_work(self):
        transport = LoopbackTransport(slots=1)
        transport.close()
        with pytest.raises(RuntimeError, match="closed"):
            transport.submit(0, None)


class TestSocketCampaigns:
    @pytest.fixture()
    def servers(self):
        started = [WorkerServer().start(), WorkerServer().start()]
        yield started
        for server in started:
            server.close()

    @staticmethod
    def addresses(servers):
        return [f"{host}:{port}" for host, port in
                (server.address for server in servers)]

    def test_matches_serial_bit_for_bit(self, serial_reference, servers):
        remote = run_campaign(
            transport="socket", remote_workers=self.addresses(servers)
        )
        assert campaign_fingerprint(remote) == campaign_fingerprint(
            serial_reference
        )
        assert remote.workers == 2
        assert remote.transport == "socket"
        assert remote.wire_bytes_sent > 0
        assert remote.wire_bytes_received > 0

    def test_daemons_stay_warm_and_rescope_per_campaign(
        self, serial_reference, servers
    ):
        addresses = self.addresses(servers)
        first = run_campaign(transport="socket", remote_workers=addresses)
        # Replicas survive the campaign (the daemon is long-lived) and
        # every daemon ran its sticky share of the nodes.
        warm = [sorted(server.state.replicas.caches) for server in servers]
        assert sorted(node for nodes in warm for node in nodes) == [
            "r1", "r2", "r3",
        ]
        assert all(server.state.tasks_run > 0 for server in servers)
        # A second campaign re-scopes the token and still matches.
        second = run_campaign(transport="socket", remote_workers=addresses)
        assert campaign_fingerprint(first) == campaign_fingerprint(second)
        assert campaign_fingerprint(second) == campaign_fingerprint(
            serial_reference
        )

    def test_unreachable_worker_fails_at_campaign_start(self):
        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            port = placeholder.getsockname()[1]
        # Nothing listens on `port` anymore.
        with pytest.raises(RemoteWorkerError, match="cannot reach"):
            run_campaign(
                transport="socket",
                remote_workers=[f"127.0.0.1:{port}"],
            )

    def test_socket_requires_addresses(self):
        with pytest.raises(ValueError, match="remote_workers"):
            run_campaign(transport="socket")


class TestAbortAndCleanup:
    """stop_after_first_fault + close() across all three transports."""

    @pytest.fixture(scope="class")
    def serial_abort(self):
        return run_campaign(workers=1, pipeline=False, stop=True)

    def test_local_pool_abort_matches_serial(self, serial_abort):
        aborted = run_campaign(workers=2, stop=True)
        assert serial_abort.reports
        assert report_fingerprint(aborted) == report_fingerprint(
            serial_abort
        )
        assert aborted.snapshots_taken == serial_abort.snapshots_taken
        assert (
            aborted.cache_state_fingerprints
            == serial_abort.cache_state_fingerprints
        )

    def test_loopback_abort_matches_serial(self, serial_abort):
        aborted = run_campaign(workers=2, transport="loopback", stop=True)
        assert report_fingerprint(aborted) == report_fingerprint(
            serial_abort
        )
        assert (
            aborted.cache_state_fingerprints
            == serial_abort.cache_state_fingerprints
        )

    def test_socket_abort_matches_serial_and_daemon_survives(
        self, serial_abort
    ):
        with WorkerServer().start() as alpha, WorkerServer().start() as beta:
            addresses = [f"{host}:{port}" for host, port in
                         (alpha.address, beta.address)]
            aborted = run_campaign(
                transport="socket", remote_workers=addresses, stop=True
            )
            assert report_fingerprint(aborted) == report_fingerprint(
                serial_abort
            )
            assert (
                aborted.cache_state_fingerprints
                == serial_abort.cache_state_fingerprints
            )
            # The daemons outlive the aborted campaign and still serve.
            follow_up = run_campaign(
                transport="socket", remote_workers=addresses
            )
            assert follow_up.reports

    def test_local_pool_close_reaps_workers(self):
        transport = LocalPoolTransport(slots=2)
        engine = ParallelCampaignEngine(transport=transport)
        assert engine.workers == 2
        engine.close()
        assert transport._pools == [None, None]

    def test_dead_worker_surfaces_worker_died_with_address(self):
        """A worker hanging up mid-task must raise WorkerDiedError
        naming the peer address — the failover-classifiable signal —
        not a bare CancelledError or unpickling error."""
        from repro.core.remote import WorkerDiedError, recv_message

        flaky = socket.create_server(("127.0.0.1", 0))
        port = flaky.getsockname()[1]

        def accept_read_and_die():
            conn, _ = flaky.accept()
            recv_message(conn)  # swallow the task frame...
            conn.close()  # ...and hang up without answering

        killer = threading.Thread(target=accept_read_and_die, daemon=True)
        killer.start()
        transport = SocketTransport([f"127.0.0.1:{port}"])
        try:
            task = ExplorationTask(
                index=0, cycle=0, node="r1", snapshot=None,
                suite=default_property_suite(), claims=(), seed=0,
            )
            future = transport.submit(0, task)
            with pytest.raises(WorkerDiedError, match="died") as caught:
                future.result(timeout=10)
            assert caught.value.address == ("127.0.0.1", port)
            assert str(port) in str(caught.value)
            assert not transport.alive(0)
        finally:
            killer.join(timeout=2.0)
            transport.close()
            flaky.close()

    def test_socket_close_cancels_undelivered_futures(self):
        """A submit the worker never answers is cancelled, not leaked."""
        mute = socket.create_server(("127.0.0.1", 0))
        accepted = []

        def accept_and_hold():
            conn, _ = mute.accept()
            accepted.append(conn)  # read nothing, answer nothing

        holder = threading.Thread(target=accept_and_hold, daemon=True)
        holder.start()
        transport = SocketTransport(
            [f"127.0.0.1:{mute.getsockname()[1]}"]
        )
        try:
            task = ExplorationTask(
                index=0, cycle=0, node="r1", snapshot=None,
                suite=default_property_suite(), claims=(), seed=0,
            )
            future = transport.submit(0, task)
            assert not future.done()
            transport.close()
            assert future.cancelled() or future.exception() is not None
            late = transport.submit(0, task)
            with pytest.raises(RemoteWorkerError, match="closed"):
                late.result()
        finally:
            holder.join(timeout=2.0)
            for conn in accepted:
                conn.close()
            mute.close()
