"""Tests for pre-deployment configuration-change vetting."""

from repro.bgp.config import AddFilter, AddNetwork, RemoveNetwork, SetNeighborFilter
from repro.bgp.ip import Prefix
from repro.bgp.policy import Filter
from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator


def make_dice(live):
    return DiceOrchestrator(live, default_property_suite())


class TestVetChange:
    def test_hijacking_change_rejected(self, converged3):
        dice = make_dice(converged3)
        reports = dice.vet_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        assert reports
        assert reports[0].fault_class == "operator_mistake"
        assert "pending config change" in reports[0].input_summary

    def test_clean_change_vets_clean(self, converged3):
        dice = make_dice(converged3)
        reports = dice.vet_change("r3", AddNetwork(Prefix("203.0.113.0/24")))
        assert reports == []

    def test_live_system_untouched_either_way(self, converged3):
        dice = make_dice(converged3)
        before = sorted(
            str(p) for p in converged3.router("r3").config.networks
        )
        dice.vet_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        dice.vet_change("r3", AddNetwork(Prefix("203.0.113.0/24")))
        after = sorted(
            str(p) for p in converged3.router("r3").config.networks
        )
        assert before == after
        assert converged3.router("r2").loc_rib.get(
            Prefix("10.1.0.0/16")
        ).peer == "r1"

    def test_withdrawal_vets_clean(self, converged3):
        """Removing your own prefix is legitimate (reachability loss is
        the operator's prerogative; no property forbids it)."""
        dice = make_dice(converged3)
        reports = dice.vet_change("r3", RemoveNetwork(Prefix("10.3.0.0/16")))
        assert reports == []

    def test_filter_definition_vets_clean(self, converged3):
        """Defining an (unused) filter has no routing consequence."""
        dice = make_dice(converged3)
        reports = dice.vet_change(
            "r2",
            AddFilter(Filter.compile("filter drop_all { reject; }")),
        )
        assert reports == []

    def test_dangling_filter_reference_is_latent(self, converged3):
        """Pointing a neighbor at a nonexistent filter is a latent,
        input-triggered fault: the single what-if run stays quiet (no
        UPDATE arrives within the horizon), and a subsequent campaign —
        which *does* inject inputs — exposes it as a crash."""
        from repro.core.orchestrator import OrchestratorConfig

        dice = make_dice(converged3)
        change = SetNeighborFilter("r1", "import", "no_such_filter")
        assert dice.vet_change("r2", change) == []
        converged3.apply_change("r2", change)
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=10, explorer_nodes=["r2"], seed=5,
                stop_after_first_fault=True,
            )
        )
        assert "programming_error" in result.fault_classes_found()
        # The live router survived: crashes happened in clones only.
        assert converged3.router("r2").crash_count == 0

    def test_atomic_snapshot_mode(self, converged3):
        dice = make_dice(converged3)
        reports = dice.vet_change(
            "r3",
            AddNetwork(Prefix("10.1.0.0/16")),
            snapshot_mode="atomic",
        )
        assert reports

    def test_report_metadata(self, converged3):
        dice = make_dice(converged3)
        reports = dice.vet_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        report = reports[0]
        assert report.snapshot_id
        assert report.wall_time_s > 0
        assert report.evidence["prefix"] == "10.1.0.0/16"
