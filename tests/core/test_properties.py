"""Tests for the property framework."""

import dataclasses

import pytest

from repro.core.properties import (
    CheckContext,
    Property,
    PropertySuite,
    Violation,
)
from repro.core.sharing import SharingRegistry


class AlwaysFires(Property):
    name = "always_fires"
    fault_class = "policy_conflict"

    def __init__(self):
        self.prepared = 0

    def prepare(self, context):
        self.prepared += 1
        context.baseline["marker"] = 42

    def check(self, context):
        assert context.baseline["marker"] == 42
        return [self.violation(context, "it fired", extra=1)]


class NeverFires(Property):
    name = "never_fires"
    fault_class = "programming_error"

    def check(self, context):
        return []


def make_context(converged3):
    return CheckContext(
        clone=converged3.network,
        node="r2",
        sharing=SharingRegistry(),
    )


class TestProperty:
    def test_violation_constructor_tags_metadata(self, converged3):
        context = make_context(converged3)
        prop = AlwaysFires()
        prop.prepare(context)
        violations = prop.check(context)
        assert violations[0].property_name == "always_fires"
        assert violations[0].fault_class == "policy_conflict"
        assert violations[0].node == "r2"
        assert violations[0].evidence == {"extra": 1}

    def test_context_router_accessor(self, converged3):
        context = make_context(converged3)
        assert context.router is converged3.network.processes["r2"]
        assert context.local_as() == 65002

    def test_base_check_not_implemented(self, converged3):
        with pytest.raises(NotImplementedError):
            Property().check(make_context(converged3))


class TestPropertySuite:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PropertySuite([AlwaysFires(), AlwaysFires()])

    def test_prepare_and_check_all(self, converged3):
        prop = AlwaysFires()
        suite = PropertySuite([prop, NeverFires()])
        context = make_context(converged3)
        suite.prepare_all(context)
        assert prop.prepared == 1
        violations = suite.check_all(context)
        assert len(violations) == 1
        assert violations[0].property_name == "always_fires"

    def test_len_and_iteration(self):
        suite = PropertySuite([AlwaysFires(), NeverFires()])
        assert len(suite) == 2
        assert [prop.name for prop in suite] == [
            "always_fires", "never_fires",
        ]


class TestViolation:
    def test_frozen(self):
        violation = Violation(
            property_name="p", fault_class="policy_conflict",
            node="n", detail="d",
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            violation.detail = "changed"
