"""Tests for lightweight node checkpoints."""

from repro.bgp.ip import Prefix
from repro.bgp.router import BGPRouter
from repro.core.checkpoint import capture, checkpoint_size


class TestCapture:
    def test_checkpoint_metadata(self, converged3):
        router = converged3.router("r2")
        checkpoint = capture(router, converged3.network.sim.now)
        assert checkpoint.node == "r2"
        assert checkpoint.taken_at == converged3.network.sim.now
        assert checkpoint.wall_time_s >= 0

    def test_restore_reproduces_state(self, converged3):
        router = converged3.router("r2")
        checkpoint = capture(router, converged3.network.sim.now)
        clone = BGPRouter(checkpoint.state["config"])
        clone.attach(converged3.network)
        checkpoint.restore_into(clone)
        assert set(clone.loc_rib.prefixes()) == set(router.loc_rib.prefixes())
        assert clone.established_peers() == router.established_peers()

    def test_checkpoint_isolated_from_live_mutation(self, converged3):
        """Mutating the router after capture must not affect the
        checkpoint — the isolation DiCE's exploration depends on."""
        router = converged3.router("r2")
        checkpoint = capture(router, 0.0)
        routes_before = len(checkpoint.state["loc_rib"])
        # Mutate the live router heavily.
        from repro.bgp.config import RemoveNetwork

        router.apply_config_change(RemoveNetwork(Prefix("10.2.0.0/16")))
        for peer in list(router.adj_rib_in):
            router.adj_rib_in[peer].clear()
        assert len(checkpoint.state["loc_rib"]) == routes_before

    def test_two_restores_do_not_share_state(self, converged3):
        router = converged3.router("r2")
        checkpoint = capture(router, 0.0)
        clone_a = BGPRouter(checkpoint.state["config"])
        clone_b = BGPRouter(checkpoint.state["config"])
        clone_a.attach(converged3.network)
        clone_b.attach(converged3.network)
        checkpoint.restore_into(clone_a)
        checkpoint.restore_into(clone_b)
        clone_a.adj_rib_in["r1"].clear()
        assert len(clone_b.adj_rib_in["r1"]) > 0


class TestSize:
    def test_size_positive(self, converged3):
        checkpoint = capture(converged3.router("r2"), 0.0)
        assert checkpoint_size(checkpoint) > 0

    def test_size_grows_with_rib(self, converged3):
        from repro.bgp.config import AddNetwork

        router = converged3.router("r2")
        small = checkpoint_size(capture(router, 0.0))
        for index in range(200):
            router.apply_config_change(
                AddNetwork(Prefix((10 << 24) | (100 << 16) | (index << 8), 24))
            )
        large = checkpoint_size(capture(router, 0.0))
        assert large > small
