"""Tests for cross-node solver-cache sharing and delta transport.

The load-bearing property: campaigns are bit-identical at any worker
count and pipeline setting *including* the per-node solver caches,
whose evolution now involves cross-node merges and delta replay.  The
transport layer (CacheSync, worker-side replicas, sticky slots) only
changes how cache state moves, never what it contains.
"""

import pytest

from campaign_helpers import faulty_live, node_fingerprint, report_fingerprint
from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.parallel import (
    ParallelCampaignEngine,
    SolverCacheCoordinator,
    _replica_for,
)


def run_campaign(workers, pipeline=True, share=True, cache_size=4096,
                 cycles=2, inputs=4, stop=False):
    dice = DiceOrchestrator(faulty_live(), default_property_suite())
    return dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=inputs,
            cycles=cycles,
            seed=9,
            workers=workers,
            pipeline=pipeline,
            share_solver_caches=share,
            solver_cache_size=cache_size,
            stop_after_first_fault=stop,
        )
    )


def campaign_fingerprint(result):
    """Everything the determinism contract covers, in one tuple."""
    return (
        report_fingerprint(result),
        node_fingerprint(result),
        result.solver_cache_hits,
        result.solver_cache_misses,
        result.solver_cache_merged_hits,
        result.cache_state_fingerprints,
    )


class TestMergeDeterminism:
    """The ISSUE's property: identical fault reports, counters, and
    final cache keys across workers ∈ {1, 2, 4} and pipeline on/off."""

    def test_workers_and_pipeline_do_not_change_results(self):
        # cycles=3/inputs=6 is the smallest budget where the merge
        # demonstrably produces cross-node hits, so the comparison
        # also covers merged-entry lookups, not just merged state.
        reference = run_campaign(workers=1, pipeline=False, cycles=3,
                                 inputs=6)
        assert reference.reports, "campaign should detect the seeded faults"
        assert reference.solver_cache_merged_hits > 0, (
            "the merge should produce cross-node hits on this workload"
        )
        for workers, pipeline in ((2, False), (2, True), (4, True)):
            other = run_campaign(workers=workers, pipeline=pipeline,
                                 cycles=3, inputs=6)
            assert campaign_fingerprint(other) == campaign_fingerprint(
                reference
            ), f"divergence at workers={workers} pipeline={pipeline}"

    def test_fifo_eviction_replays_identically_at_tiny_cache(self):
        """Eviction pressure exercises ordered replay: merged entries
        evict local ones and vice versa, in one deterministic order."""
        serial = run_campaign(workers=1, cache_size=8)
        parallel = run_campaign(workers=4, cache_size=8)
        assert campaign_fingerprint(serial) == campaign_fingerprint(parallel)

    def test_share_disabled_matches_across_workers(self):
        serial = run_campaign(workers=1, share=False)
        parallel = run_campaign(workers=2, share=False)
        assert campaign_fingerprint(serial) == campaign_fingerprint(parallel)
        assert serial.solver_cache_merged_hits == 0
        assert serial.cache_entries_merged == 0

    def test_abort_mid_cycle_skips_the_merge_consistently(self):
        serial = run_campaign(workers=1, stop=True)
        parallel = run_campaign(workers=3, stop=True)
        assert serial.reports
        assert report_fingerprint(serial) == report_fingerprint(parallel)
        assert (
            serial.cache_state_fingerprints
            == parallel.cache_state_fingerprints
        )

    def test_sharing_never_reduces_hits(self):
        shared = run_campaign(workers=1, share=True)
        isolated = run_campaign(workers=1, share=False)
        assert shared.solver_cache_hits >= isolated.solver_cache_hits


class TestTransportAccounting:
    def test_parallel_ships_deltas_not_caches(self):
        result = run_campaign(workers=2)
        assert result.cache_syncs == 6  # 3 nodes x 2 cycles
        assert result.cache_bytes_shipped() > 0
        assert (
            result.cache_bytes_shipped() < result.cache_bytes_full_equivalent()
        )
        assert 0.0 < result.cache_bytes_reduction() <= 1.0

    def test_baseline_measurement_can_be_disabled(self):
        dice = DiceOrchestrator(faulty_live(), default_property_suite())
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=3, seed=9, workers=2,
                measure_cache_baseline=False,
            )
        )
        assert result.cache_bytes_shipped() > 0  # transport still counted
        assert result.cache_bytes_full_equivalent() == 0
        assert result.cache_bytes_reduction() == 0.0
        from repro.viz.dashboard import render_campaign

        text = render_campaign(result)
        assert "cache transport" in text
        assert "full" not in text.split("cache transport")[1].splitlines()[0]

    def test_serial_ships_nothing(self):
        result = run_campaign(workers=1)
        assert result.cache_syncs == 0
        assert result.cache_bytes_shipped() == 0
        assert result.cache_bytes_reduction() == 0.0

    def test_pipelined_prepickles_payloads(self):
        result = run_campaign(workers=2, pipeline=True)
        assert result.capture_pickle_s > 0.0
        assert result.capture_pickle_s <= result.capture_wall_s

    def test_report_includes_cache_transport(self):
        from repro.core.reporting import campaign_to_dict

        summary = campaign_to_dict(run_campaign(workers=2))["summary"]
        transport = summary["cache_transport"]
        assert transport["bytes_shipped_out"] > 0
        assert transport["bytes_shipped_in"] > 0
        assert 0.0 < transport["bytes_reduction"] <= 1.0
        assert summary["solver_cache_merged_hits"] >= 0
        assert summary["capture_pickle_s"] >= 0.0
        fingerprints = summary["cache_state_fingerprints"]
        assert set(fingerprints) == {"r1", "r2", "r3"}
        assert all(
            isinstance(value, str) and len(value) == 16
            for value in fingerprints.values()
        )

    def test_dashboard_renders_transport_line(self):
        from repro.viz.dashboard import render_campaign

        text = render_campaign(run_campaign(workers=2))
        assert "cache transport" in text
        assert "saved" in text


class TestStickySlots:
    def test_same_node_same_slot(self):
        engine = ParallelCampaignEngine(workers=4)
        first = [engine.slot_for(n) for n in ("a", "b", "c", "d", "e")]
        second = [engine.slot_for(n) for n in ("a", "b", "c", "d", "e")]
        assert first == second
        assert first == [0, 1, 2, 3, 0]  # first-seen round-robin

    def test_assignment_is_submission_order_deterministic(self):
        one = ParallelCampaignEngine(workers=3)
        two = ParallelCampaignEngine(workers=3)
        nodes = ["r2", "r1", "r3"]
        assert [one.slot_for(n) for n in nodes] == [
            two.slot_for(n) for n in nodes
        ]


class TestWorkerReplicas:
    """The worker-side store, exercised in-process (the inline engine
    and pool workers share this exact code path)."""

    def sync(self, coordinator, node, slot=0):
        return coordinator.sync_for(node, slot=slot)

    def test_replica_persists_across_tasks_of_one_campaign(self):
        coordinator = SolverCacheCoordinator(["n1"], max_entries=64)
        replica = _replica_for(self.sync(coordinator, "n1"))
        replica.store_model((1,), {"x": 1})
        delta = replica.take_delta("n1")
        coordinator.absorb(delta)
        again = _replica_for(self.sync(coordinator, "n1"))
        assert again is replica
        assert again.lookup_model((1,)) == {"x": 1}

    def test_new_campaign_token_resets_the_store(self):
        first = SolverCacheCoordinator(["n1"])
        replica = _replica_for(self.sync(first, "n1"))
        replica.store_model((1,), {"x": 1})
        second = SolverCacheCoordinator(["n1"])
        fresh = _replica_for(self.sync(second, "n1"))
        assert fresh is not replica
        assert fresh.lookup_model((1,)) is None

    def test_generation_mismatch_is_loud(self):
        coordinator = SolverCacheCoordinator(["n1"])
        replica = _replica_for(self.sync(coordinator, "n1"))
        replica.store_model((1,), {"x": 1})  # never shipped back
        with pytest.raises(RuntimeError, match="generation"):
            _replica_for(self.sync(coordinator, "n1"))

    def test_merge_blob_ships_once_per_slot(self):
        coordinator = SolverCacheCoordinator(["n1", "n2"], max_entries=64)
        for number, node in enumerate(("n1", "n2"), start=1):
            replica = _replica_for(self.sync(coordinator, node, slot=0))
            replica.store_model((number,), {"x": number})
            coordinator.absorb(replica.take_delta(node))
        coordinator.end_cycle()
        first = self.sync(coordinator, "n1", slot=0)
        second = self.sync(coordinator, "n2", slot=0)
        assert first.merge_id == 1
        assert first.merge_blob is not None
        assert second.merge_id == 1
        assert second.merge_blob is None  # slot already has the blob
        # Both replicas still fold the blob (from the slot store).
        a = _replica_for(first)
        b = _replica_for(second)
        assert a.models_cached == 2
        assert b.models_cached == 2
        assert (
            coordinator.state_fingerprints()
            == {"n1": a.state_fingerprint(), "n2": b.state_fingerprint()}
        )
