"""Property-based tests on state invariants (hypothesis).

These stress the contracts the snapshot machinery silently relies on:
export/import must be a fixpoint, and policy evaluation must never
mutate its inputs — under arbitrary route/attribute content, not just
the fixtures used elsewhere.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.config import NeighborConfig, RouterConfig
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.policy import Filter
from repro.bgp.route import SOURCE_EBGP, Route
from repro.bgp.router import BGPRouter

prefixes = st.builds(
    lambda network, length: Prefix(
        network & (0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF),
        length,
    ),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=8, max_value=28),
)

attributes = st.builds(
    PathAttributes,
    origin=st.sampled_from([0, 1, 2]),
    as_path=st.lists(
        st.integers(min_value=1, max_value=0xFFFE), min_size=1, max_size=5
    ).map(lambda asns: AsPath.from_sequence(*asns)),
    next_hop=st.integers(min_value=1, max_value=0xDFFFFFFF).map(IPv4Address),
    med=st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
    local_pref=st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
    communities=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), max_size=4
    ).map(tuple),
)


def fresh_router():
    config = RouterConfig(
        name="prop",
        local_as=65001,
        router_id=IPv4Address("10.0.0.1"),
        neighbors=(NeighborConfig(peer="peer", peer_as=65002),),
    )
    return BGPRouter(config)


class TestCheckpointFixpoint:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(prefixes, attributes), max_size=8))
    def test_export_import_export_is_identity(self, entries):
        """export -> import -> export reproduces the state exactly."""
        router = fresh_router()
        for prefix, attrs in entries:
            route = Route(
                prefix=prefix,
                attributes=attrs,
                source=SOURCE_EBGP,
                peer="peer",
                peer_as=65002,
            )
            router.adj_rib_in["peer"].update(route)
        router.rerun_decision([prefix for prefix, _ in entries])
        first = router.export_state()
        clone = BGPRouter(first["config"])
        clone.import_state(copy.deepcopy(first))
        second = clone.export_state()
        assert first["adj_rib_in"] == second["adj_rib_in"]
        assert first["loc_rib"] == second["loc_rib"]
        assert first["sessions"] == second["sessions"]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(prefixes, attributes), min_size=1, max_size=8))
    def test_loc_rib_subset_of_candidates(self, entries):
        """Every selected route is one of the candidates offered."""
        router = fresh_router()
        for prefix, attrs in entries:
            router.adj_rib_in["peer"].update(
                Route(
                    prefix=prefix, attributes=attrs, source=SOURCE_EBGP,
                    peer="peer", peer_as=65002,
                )
            )
        router.rerun_decision([prefix for prefix, _ in entries])
        for selected in router.loc_rib.routes():
            stored = router.adj_rib_in["peer"].get(selected.prefix)
            assert stored is selected


class TestPolicyPurity:
    FILTERS = [
        "filter f { accept; }",
        "filter f { reject; }",
        "filter f { bgp_local_pref = 250; accept; }",
        "filter f { if bgp_path.len > 3 then reject; accept; }",
        "filter f { bgp_community.add((65000, 1)); accept; }",
        "filter f { if net ~ [ 10.0.0.0/8+ ] then { bgp_med = 1; accept; } reject; }",
    ]

    @settings(max_examples=40, deadline=None)
    @given(
        prefixes,
        attributes,
        st.sampled_from(range(len(FILTERS))),
    )
    def test_evaluate_never_mutates_route(self, prefix, attrs, index):
        policy = Filter.compile(self.FILTERS[index])
        route = Route(
            prefix=prefix, attributes=attrs, source=SOURCE_EBGP,
            peer="p", peer_as=65002,
        )
        snapshot = copy.deepcopy(route.attributes)
        policy.evaluate(route)
        assert route.attributes == snapshot

    @settings(max_examples=40, deadline=None)
    @given(prefixes, attributes, st.sampled_from(range(len(FILTERS))))
    def test_evaluate_deterministic(self, prefix, attrs, index):
        policy = Filter.compile(self.FILTERS[index])
        route = Route(
            prefix=prefix, attributes=attrs, source=SOURCE_EBGP,
            peer="p", peer_as=65002,
        )
        first = policy.evaluate(route)
        second = policy.evaluate(route)
        assert first.accepted == second.accepted
        assert first.attributes == second.attributes
