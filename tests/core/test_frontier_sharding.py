"""Sharded-frontier campaigns: bit-equality at any worker count.

The sharding contract: the shard decomposition is *configuration*
(``frontier_shards``), not an execution mode.  Workers=1 running the
identical decomposition over the inline transport IS the serial
reference, and fault reports, per-node path/coverage counters, and
solver-cache ``state_fingerprint``s are bit-identical at any worker
count, over any transport, pipelined or not — even when a worker slot
dies holding a shard mid-round.
"""

import pytest

from campaign_helpers import faulty_live, node_fingerprint, report_fingerprint
from chaos import MID_TASK, PRE_DISPATCH, ChaosTransport, Kill

from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.remote import LoopbackTransport, SocketTransport, WorkerServer


def run_campaign(workers=1, shards=4, **kwargs):
    dice = DiceOrchestrator(faulty_live(), default_property_suite())
    return dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=6,
            cycles=2,
            seed=9,
            workers=workers,
            frontier_shards=shards,
            **kwargs,
        )
    )


def campaign_fingerprint(result):
    return (
        report_fingerprint(result),
        node_fingerprint(result),
        result.solver_cache_hits,
        result.solver_cache_misses,
        result.inputs_explored,
        result.snapshots_taken,
        sorted(result.cache_state_fingerprints.items()),
    )


@pytest.fixture(scope="module")
def serial_reference():
    """The same decomposition on one worker — the equality baseline."""
    return run_campaign(workers=1)


class TestShardedCampaigns:
    def test_sharding_finds_the_seeded_fault(self, serial_reference):
        assert serial_reference.reports
        assert serial_reference.inputs_explored > 0
        assert serial_reference.cycles_completed == 2

    def test_shards_flag_implies_the_sharded_discipline(self):
        # No explicit --frontier sharded needed: shards > 1 routes the
        # campaign through the sharded path (node reports carry the
        # merged-frontier coverage counters, identical either way).
        implied = run_campaign(workers=1, shards=2)
        explicit = run_campaign(workers=1, shards=2, frontier="sharded")
        assert campaign_fingerprint(implied) == campaign_fingerprint(explicit)

    def test_sharded_with_one_shard_still_runs(self):
        result = run_campaign(workers=1, shards=1, frontier="sharded")
        assert result.reports
        assert result.cycles_completed == 2


class TestWorkerCountEquality:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_local_pools_match_serial(self, serial_reference, workers):
        result = run_campaign(workers=workers)
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )

    def test_loopback_matches_serial(self, serial_reference):
        result = run_campaign(workers=2, transport="loopback")
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )

    def test_unpipelined_matches_pipelined(self, serial_reference):
        result = run_campaign(workers=2, pipeline=False)
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )


class TestShardChaos:
    def test_slot_death_mid_shard_matches_serial(self, serial_reference):
        """A slot dies holding a dispatched shard; the shard re-runs
        hermetically on a survivor (fresh solver, private cache) so the
        merged session — and the whole campaign — is unchanged."""
        chaos = {}

        def factory():
            chaos["transport"] = ChaosTransport(
                LoopbackTransport(slots=2),
                [Kill(MID_TASK, slot=1, occurrence=2)],
            )
            return chaos["transport"]

        result = run_campaign(workers=2, transport_factory=factory)
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )
        assert chaos["transport"].kill_log  # the script really fired
        assert result.worker_failures == 1
        assert result.tasks_requeued >= 1

    def test_pre_dispatch_death_matches_serial(self, serial_reference):
        def factory():
            return ChaosTransport(
                LoopbackTransport(slots=2),
                [Kill(PRE_DISPATCH, slot=0, occurrence=1)],
            )

        result = run_campaign(workers=2, transport_factory=factory)
        assert campaign_fingerprint(result) == campaign_fingerprint(
            serial_reference
        )
        assert result.worker_failures == 1


@pytest.mark.slow_socket
@pytest.mark.timeout(300)
class TestSocketSharding:
    def test_socket_daemons_match_serial(self, serial_reference):
        with WorkerServer().start() as alpha, WorkerServer().start() as beta:
            addresses = [f"{host}:{port}" for host, port in
                         (alpha.address, beta.address)]
            result = run_campaign(
                transport="socket", remote_workers=addresses
            )
            assert campaign_fingerprint(result) == campaign_fingerprint(
                serial_reference
            )

    def test_socket_daemon_death_mid_shard_matches_serial(
        self, serial_reference
    ):
        with WorkerServer().start() as alpha, WorkerServer().start() as beta:
            servers = [alpha, beta]
            addresses = [f"{host}:{port}" for host, port in
                         (alpha.address, beta.address)]

            def factory():
                return ChaosTransport(
                    SocketTransport(addresses),
                    [Kill(MID_TASK, slot=1, occurrence=2)],
                    on_kill=lambda slot: servers[slot].close(),
                )

            result = run_campaign(transport_factory=factory)
            assert campaign_fingerprint(result) == campaign_fingerprint(
                serial_reference
            )
            assert result.worker_failures == 1
            assert result.tasks_requeued >= 1
