"""Tests for campaign JSON reporting."""

import json

from repro.core.faultclass import FaultReport
from repro.core.orchestrator import CampaignResult
from repro.core.reporting import (
    campaign_to_dict,
    campaign_to_json,
    fault_report_from_dict,
    fault_report_to_dict,
    load_fault_reports,
    save_campaign,
)
from repro.core.explorer import NodeExplorationReport


def sample_report(**overrides):
    fields = dict(
        fault_class="operator_mistake",
        property_name="origin_authenticity",
        node="r3",
        detected_at=12.5,
        wall_time_s=1.25,
        input_summary="UpdateMessage(...)",
        evidence={"prefix": "10.1.0.0/16", "owners": [65001]},
        snapshot_id="snap-9",
        inputs_explored=42,
    )
    fields.update(overrides)
    return FaultReport(**fields)


def sample_campaign():
    return CampaignResult(
        reports=[sample_report()],
        node_reports=[
            NodeExplorationReport(
                node="r3", strategy="concolic", snapshot_id="snap-9",
                executions=42, unique_paths=40, branch_coverage=120,
                clones_created=44,
            )
        ],
        snapshots_taken=1,
        clones_created=44,
        inputs_explored=42,
        cycles_completed=1,
        wall_time_s=3.5,
    )


class TestFaultReportSerialization:
    def test_roundtrip(self):
        original = sample_report()
        data = fault_report_to_dict(original)
        restored = fault_report_from_dict(data)
        assert restored.fault_class == original.fault_class
        assert restored.node == original.node
        assert restored.evidence["prefix"] == "10.1.0.0/16"
        assert restored.inputs_explored == 42

    def test_dict_is_json_safe(self):
        report = sample_report(evidence={"weird": object()})
        text = json.dumps(fault_report_to_dict(report))
        assert "weird" in text


class TestCampaignSerialization:
    def test_structure(self):
        data = campaign_to_dict(sample_campaign())
        assert data["summary"]["snapshots_taken"] == 1
        assert data["summary"]["fault_classes_found"] == [
            "operator_mistake",
        ]
        assert data["node_reports"][0]["node"] == "r3"
        assert len(data["reports"]) == 1

    def test_json_parses(self):
        parsed = json.loads(campaign_to_json(sample_campaign()))
        assert parsed["summary"]["inputs_explored"] == 42

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(sample_campaign(), str(path))
        reports = load_fault_reports(str(path))
        assert len(reports) == 1
        assert reports[0].fault_class == "operator_mistake"
        assert reports[0].evidence["owners"] == [65001]


class TestDispatchTransportBlock:
    """The dispatch_transport block: the JSON contract the CI smoke
    jobs and operators' tooling read transport and failover facts
    from."""

    def test_defaults_for_a_serial_campaign(self):
        block = campaign_to_dict(sample_campaign())["summary"][
            "dispatch_transport"
        ]
        assert block == {
            "transport": "local",
            "wire_bytes_sent": 0,
            "wire_bytes_received": 0,
            "worker_failures": 0,
            "max_worker_failures": 0,
            "dead_workers": [],
            "tasks_requeued": 0,
            "cache_replica_rebuilds": 0,
        }

    def test_failover_ledger_round_trips_through_json(self):
        result = sample_campaign()
        result.transport = "socket"
        result.wire_bytes_sent = 123_456
        result.wire_bytes_received = 654
        result.worker_failures = 1
        result.max_worker_failures = 1
        result.dead_workers = ["127.0.0.1:7411"]
        result.tasks_requeued = 2
        result.cache_replica_rebuilds = 2
        block = json.loads(campaign_to_json(result))["summary"][
            "dispatch_transport"
        ]
        assert block["transport"] == "socket"
        assert block["wire_bytes_sent"] == 123_456
        assert block["wire_bytes_received"] == 654
        assert block["worker_failures"] == 1
        assert block["max_worker_failures"] == 1
        assert block["dead_workers"] == ["127.0.0.1:7411"]
        assert block["tasks_requeued"] == 2
        assert block["cache_replica_rebuilds"] == 2

    def test_dead_worker_list_is_a_copy(self):
        """Serialization must not alias the result's mutable list."""
        result = sample_campaign()
        result.dead_workers = ["a:1"]
        block = campaign_to_dict(result)["summary"]["dispatch_transport"]
        block["dead_workers"].append("b:2")
        assert result.dead_workers == ["a:1"]
