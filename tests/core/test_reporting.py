"""Tests for campaign JSON reporting."""

import json

from repro.core.faultclass import FaultReport
from repro.core.orchestrator import CampaignResult
from repro.core.reporting import (
    campaign_to_dict,
    campaign_to_json,
    fault_report_from_dict,
    fault_report_to_dict,
    load_fault_reports,
    save_campaign,
)
from repro.core.explorer import NodeExplorationReport


def sample_report(**overrides):
    fields = dict(
        fault_class="operator_mistake",
        property_name="origin_authenticity",
        node="r3",
        detected_at=12.5,
        wall_time_s=1.25,
        input_summary="UpdateMessage(...)",
        evidence={"prefix": "10.1.0.0/16", "owners": [65001]},
        snapshot_id="snap-9",
        inputs_explored=42,
    )
    fields.update(overrides)
    return FaultReport(**fields)


def sample_campaign():
    return CampaignResult(
        reports=[sample_report()],
        node_reports=[
            NodeExplorationReport(
                node="r3", strategy="concolic", snapshot_id="snap-9",
                executions=42, unique_paths=40, branch_coverage=120,
                clones_created=44,
            )
        ],
        snapshots_taken=1,
        clones_created=44,
        inputs_explored=42,
        cycles_completed=1,
        wall_time_s=3.5,
    )


class TestFaultReportSerialization:
    def test_roundtrip(self):
        original = sample_report()
        data = fault_report_to_dict(original)
        restored = fault_report_from_dict(data)
        assert restored.fault_class == original.fault_class
        assert restored.node == original.node
        assert restored.evidence["prefix"] == "10.1.0.0/16"
        assert restored.inputs_explored == 42

    def test_dict_is_json_safe(self):
        report = sample_report(evidence={"weird": object()})
        text = json.dumps(fault_report_to_dict(report))
        assert "weird" in text


class TestCampaignSerialization:
    def test_structure(self):
        data = campaign_to_dict(sample_campaign())
        assert data["summary"]["snapshots_taken"] == 1
        assert data["summary"]["fault_classes_found"] == [
            "operator_mistake",
        ]
        assert data["node_reports"][0]["node"] == "r3"
        assert len(data["reports"]) == 1

    def test_json_parses(self):
        parsed = json.loads(campaign_to_json(sample_campaign()))
        assert parsed["summary"]["inputs_explored"] == 42

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(sample_campaign(), str(path))
        reports = load_fault_reports(str(path))
        assert len(reports) == 1
        assert reports[0].fault_class == "operator_mistake"
        assert reports[0].evidence["owners"] == [65001]
