"""Tests for pipelined snapshot capture.

Two layers: unit tests of :class:`SnapshotPipeline`'s ordering, drain,
and error semantics against a fake capture function, and end-to-end
determinism tests asserting that pipelined campaigns produce results
bit-identical to serial ones — including under mid-cycle abort.
"""

import threading
import time

import pytest

from campaign_helpers import faulty_live, node_fingerprint, report_fingerprint
from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.pipeline import SnapshotPipeline, plan_captures


def requests(count, nodes=("r1", "r2")):
    return plan_captures(list(nodes), count)


class TestPlanCaptures:
    def test_serial_loop_order(self):
        plan = plan_captures(["a", "b"], 2)
        assert [(r.cycle, r.node) for r in plan] == [
            (0, "a"), (0, "b"), (1, "a"), (1, "b"),
        ]
        assert [r.index for r in plan] == [0, 1, 2, 3]

    def test_empty(self):
        assert plan_captures(["a"], 0) == []


class TestSnapshotPipeline:
    def test_captures_in_request_order(self):
        captured_order = []

        def capture(request):
            captured_order.append((request.cycle, request.node))
            return object(), float(request.index)

        plan = requests(3)
        with SnapshotPipeline(capture, plan, depth=2) as pipeline:
            consumed = [pipeline.next_capture() for _ in plan]
        assert captured_order == [(r.cycle, r.node) for r in plan]
        assert [c.index for c in consumed] == [r.index for r in plan]
        assert [c.detected_at for c in consumed] == [
            float(r.index) for r in plan
        ]
        assert pipeline.captures_completed == len(plan)

    def test_single_producer_thread_owns_captures(self):
        threads = set()

        def capture(request):
            threads.add(threading.current_thread().name)
            return object(), 0.0

        with SnapshotPipeline(capture, requests(2), depth=1) as pipeline:
            for _ in range(4):
                pipeline.next_capture()
        assert threads == {"snapshot-pipeline"}

    def test_consuming_past_the_plan_raises(self):
        with SnapshotPipeline(lambda r: (object(), 0.0), requests(1),
                              depth=1) as pipeline:
            for _ in range(2):
                pipeline.next_capture()
            with pytest.raises(IndexError):
                pipeline.next_capture()

    def test_bounded_prefetch(self):
        """The producer never runs more than depth+1 captures ahead."""
        started = []
        release = threading.Event()

        def capture(request):
            started.append(request.index)
            release.wait(2.0)
            return object(), 0.0

        pipeline = SnapshotPipeline(capture, requests(4), depth=2)
        try:
            time.sleep(0.3)
            # Nothing consumed: at most depth enqueued + 1 in flight.
            assert len(started) <= 3
        finally:
            release.set()
            pipeline.close()

    def test_close_drains_and_stops_producing(self):
        def capture(request):
            time.sleep(0.01)
            return object(), 0.0

        pipeline = SnapshotPipeline(capture, requests(50), depth=1)
        pipeline.next_capture()
        pipeline.close()
        produced_at_close = pipeline.captures_completed
        assert produced_at_close < 100  # plan is 100 requests long
        time.sleep(0.1)
        # The producer thread is gone; nothing new appears.
        assert pipeline.captures_completed == produced_at_close

    def test_capture_errors_reraise_in_consumer(self):
        def capture(request):
            if request.index == 1:
                raise TimeoutError("cut never closed")
            return object(), 0.0

        with SnapshotPipeline(capture, requests(2), depth=2) as pipeline:
            pipeline.next_capture()
            with pytest.raises(TimeoutError, match="cut never closed"):
                pipeline.next_capture()

    def test_hidden_fraction_bounds(self):
        with SnapshotPipeline(lambda r: (object(), 0.0), requests(1),
                              depth=1) as pipeline:
            pipeline.next_capture()
        assert 0.0 <= pipeline.hidden_fraction() <= 1.0


# -- end-to-end determinism --


def run_campaign(workers, pipeline, stop=False, cycles=2, inputs=4):
    dice = DiceOrchestrator(faulty_live(), default_property_suite())
    return dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=inputs,
            cycles=cycles,
            seed=9,
            workers=workers,
            pipeline=pipeline,
            stop_after_first_fault=stop,
        )
    )


class TestPipelinedDeterminism:
    def test_pipelined_matches_serial(self):
        """Fault reports, counters, and cache evolution are identical."""
        serial = run_campaign(workers=1, pipeline=False)
        piped = run_campaign(workers=3, pipeline=True)
        assert serial.reports, "campaign should detect the seeded faults"
        assert report_fingerprint(serial) == report_fingerprint(piped)
        assert node_fingerprint(serial) == node_fingerprint(piped)
        assert serial.fault_classes_found() == piped.fault_classes_found()
        assert serial.inputs_explored == piped.inputs_explored
        assert serial.snapshots_taken == piped.snapshots_taken
        assert serial.solver_cache_hits == piped.solver_cache_hits
        assert serial.solver_cache_misses == piped.solver_cache_misses
        assert piped.pipelined and not serial.pipelined

    def test_pipelined_matches_batch_parallel(self):
        """The pipeline knob alone changes nothing at equal workers."""
        batch = run_campaign(workers=3, pipeline=False, cycles=1)
        piped = run_campaign(workers=3, pipeline=True, cycles=1)
        assert report_fingerprint(batch) == report_fingerprint(piped)
        assert node_fingerprint(batch) == node_fingerprint(piped)
        assert batch.snapshots_taken == piped.snapshots_taken

    def test_stop_after_first_fault_abort_matches_serial(self):
        """Mid-cycle abort drains the pipeline; counters match serial."""
        serial = run_campaign(workers=1, pipeline=False, stop=True)
        piped = run_campaign(workers=3, pipeline=True, stop=True)
        assert serial.reports
        assert report_fingerprint(serial) == report_fingerprint(piped)
        assert serial.snapshots_taken == piped.snapshots_taken
        assert serial.inputs_explored == piped.inputs_explored
        assert len(serial.node_reports) == len(piped.node_reports)

    def test_capture_stats_populated(self):
        piped = run_campaign(workers=2, pipeline=True, cycles=1)
        assert piped.capture_wall_s > 0.0
        assert 0.0 <= piped.capture_hidden_fraction() <= 1.0

    def test_serial_campaign_gets_pipelined_capture(self):
        """workers=1 with the pipeline on overlaps the capture thread
        with inline exploration — bit-identical results, no transport
        (cache_syncs stays 0, the serial contract)."""
        plain = run_campaign(workers=1, pipeline=False)
        overlapped = run_campaign(workers=1, pipeline=True)
        assert overlapped.pipelined and not plain.pipelined
        assert report_fingerprint(plain) == report_fingerprint(overlapped)
        assert node_fingerprint(plain) == node_fingerprint(overlapped)
        assert plain.solver_cache_hits == overlapped.solver_cache_hits
        assert (
            plain.cache_state_fingerprints
            == overlapped.cache_state_fingerprints
        )
        assert overlapped.cache_syncs == 0
        assert overlapped.cache_bytes_shipped() == 0
        assert overlapped.capture_wall_s > 0.0

    def test_serial_pipelined_abort_matches_serial(self):
        plain = run_campaign(workers=1, pipeline=False, stop=True)
        overlapped = run_campaign(workers=1, pipeline=True, stop=True)
        assert plain.reports
        assert report_fingerprint(plain) == report_fingerprint(overlapped)
        assert plain.snapshots_taken == overlapped.snapshots_taken
        assert plain.inputs_explored == overlapped.inputs_explored

    def test_campaign_nodes_visited_once_per_cycle(self):
        piped = run_campaign(workers=2, pipeline=True, cycles=2)
        assert [n.node for n in piped.node_reports] == [
            "r1", "r2", "r3", "r1", "r2", "r3",
        ]
        assert piped.cycles_completed == 2
