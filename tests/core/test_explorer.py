"""Tests for the per-node explorer."""

import pytest

from repro.checks import default_property_suite
from repro.core.explorer import (
    ExplorationConfig,
    Explorer,
    STRATEGY_GRAMMAR,
    STRATEGY_RANDOM,
    summarize_input,
)
from repro.core.sharing import SharingRegistry


def make_explorer(live):
    snapshot = live.coordinator.capture("r2")
    claims = SharingRegistry.from_configs(live.initial_configs)
    return Explorer(snapshot, default_property_suite(), claims)


class TestConfig:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            ExplorationConfig(node="r2", strategy="psychic")


class TestSummarize:
    def test_valid_update(self, converged3):
        import random

        from repro.concolic.grammar import UpdateGrammar

        generated = UpdateGrammar(rng=random.Random(1)).generate()
        summary = summarize_input(generated.data)
        assert "UpdateMessage" in summary

    def test_malformed(self):
        assert "malformed" in summarize_input(b"\x00" * 19)

    def test_undecodable_never_raises(self):
        assert summarize_input(b"")


class TestExplore:
    def test_basic_exploration(self, converged3):
        explorer = make_explorer(converged3)
        report = explorer.explore(
            ExplorationConfig(node="r2", inputs=15, seed=1)
        )
        assert report.executions == 15
        assert report.unique_paths > 1
        assert report.branch_coverage > 10
        assert report.clones_created >= 15
        assert report.skipped_reason is None

    def test_exploration_never_touches_live(self, converged3):
        state_before = {
            name: converged3.router(name).export_state()
            for name in ("r1", "r2", "r3")
        }
        crash_before = sum(r.crash_count for r in converged3.routers())
        explorer = make_explorer(converged3)
        explorer.explore(ExplorationConfig(node="r2", inputs=20, seed=2))
        for name in ("r1", "r2", "r3"):
            router = converged3.router(name)
            assert set(router.loc_rib.prefixes()) == {
                route.prefix
                for _, route in state_before[name]["loc_rib"]
            }
        assert sum(r.crash_count for r in converged3.routers()) == crash_before

    def test_strategies_all_run(self, converged3):
        for strategy in (STRATEGY_RANDOM, STRATEGY_GRAMMAR):
            explorer = make_explorer(converged3)
            report = explorer.explore(
                ExplorationConfig(
                    node="r2", inputs=8, strategy=strategy, seed=3
                )
            )
            assert report.executions == 8
            assert report.strategy == strategy

    def test_unestablished_node_skipped(self, live3):
        # Snapshot before any session comes up.
        snapshot = live3.coordinator.capture_atomic("r2")
        claims = SharingRegistry.from_configs(live3.initial_configs)
        explorer = Explorer(snapshot, default_property_suite(), claims)
        report = explorer.explore(ExplorationConfig(node="r2", inputs=5))
        assert report.executions == 0
        assert report.skipped_reason is not None

    def test_explicit_peer_honored(self, converged3):
        explorer = make_explorer(converged3)
        report = explorer.explore(
            ExplorationConfig(node="r2", inputs=5, peer="r3", seed=4)
        )
        assert report.executions == 5

    def test_unknown_peer_skips(self, converged3):
        explorer = make_explorer(converged3)
        report = explorer.explore(
            ExplorationConfig(node="r2", inputs=5, peer="ghost", seed=4)
        )
        assert report.skipped_reason is not None

    def test_crash_bug_found_and_reported(self, converged3_with_bug):
        explorer = make_explorer(converged3_with_bug)
        report = explorer.explore(
            ExplorationConfig(node="r2", inputs=250, seed=11,
                              grammar_seeds=5)
        )
        classes = {v.fault_class for v, _ in report.violations}
        assert "programming_error" in classes


class TestSelectionExploration:
    def test_selection_needs_multiple_candidates(self, converged3):
        explorer = make_explorer(converged3)
        # In the line topology r2 has single-candidate prefixes only.
        report = explorer.explore_selection("r2", seed=1)
        assert report.skipped_reason is not None

    def test_selection_explores_outcomes(self):
        """A node with two candidate routes must see >= 2 outcomes."""
        from repro import (
            IPv4Address,
            LiveSystem,
            NeighborConfig,
            Prefix,
            RouterConfig,
        )
        from repro.net.link import LinkProfile

        # Diamond: d originates, a and b both advertise to c.
        prefix = Prefix("10.77.0.0/16")
        configs = [
            RouterConfig(name="d", local_as=100,
                         router_id=IPv4Address("1.0.0.1"),
                         networks=(prefix,),
                         neighbors=(NeighborConfig(peer="a", peer_as=200),
                                    NeighborConfig(peer="b", peer_as=300))),
            RouterConfig(name="a", local_as=200,
                         router_id=IPv4Address("1.0.0.2"),
                         neighbors=(NeighborConfig(peer="d", peer_as=100),
                                    NeighborConfig(peer="c", peer_as=400))),
            RouterConfig(name="b", local_as=300,
                         router_id=IPv4Address("1.0.0.3"),
                         neighbors=(NeighborConfig(peer="d", peer_as=100),
                                    NeighborConfig(peer="c", peer_as=400))),
            RouterConfig(name="c", local_as=400,
                         router_id=IPv4Address("1.0.0.4"),
                         neighbors=(NeighborConfig(peer="a", peer_as=200),
                                    NeighborConfig(peer="b", peer_as=300))),
        ]
        links = [
            ("d", "a", LinkProfile.lan()), ("d", "b", LinkProfile.lan()),
            ("a", "c", LinkProfile.lan()), ("b", "c", LinkProfile.lan()),
        ]
        live = LiveSystem.build(configs, links, seed=5)
        live.converge()
        snapshot = live.coordinator.capture("c")
        claims = SharingRegistry.from_configs(live.initial_configs)
        explorer = Explorer(snapshot, default_property_suite(), claims)
        report = explorer.explore_selection("c", max_executions=30, seed=2)
        assert report.candidates == 2
        assert report.distinct_outcomes >= 2
        assert set(report.outcomes) <= {"a", "b", "none"}
