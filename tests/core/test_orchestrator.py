"""Tests for the campaign orchestrator."""

import pytest

from repro.checks import default_property_suite
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig


def make_orchestrator(live):
    return DiceOrchestrator(live, default_property_suite())


class TestCampaign:
    def test_cycle_visits_every_node(self, converged3):
        dice = make_orchestrator(converged3)
        result = dice.run_campaign(
            OrchestratorConfig(inputs_per_node=5, cycles=1, seed=1)
        )
        assert result.snapshots_taken == 3
        assert {r.node for r in result.node_reports} == {"r1", "r2", "r3"}
        assert result.inputs_explored == 15
        assert result.cycles_completed == 1

    def test_duplicate_explorer_nodes_rejected(self, converged3):
        """Per-node solver caches assume one session per node per cycle."""
        dice = make_orchestrator(converged3)
        with pytest.raises(ValueError, match="duplicate"):
            dice.run_campaign(
                OrchestratorConfig(explorer_nodes=["r2", "r2"], seed=1)
            )

    def test_explorer_nodes_subset(self, converged3):
        dice = make_orchestrator(converged3)
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=5, explorer_nodes=["r2"], seed=1
            )
        )
        assert result.snapshots_taken == 1
        assert result.node_reports[0].node == "r2"

    def test_multiple_cycles(self, converged3):
        dice = make_orchestrator(converged3)
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=3, cycles=2, explorer_nodes=["r1"], seed=1
            )
        )
        assert result.snapshots_taken == 2
        assert result.cycles_completed == 2

    def test_atomic_snapshot_mode(self, converged3):
        dice = make_orchestrator(converged3)
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=3, snapshot_mode="atomic",
                explorer_nodes=["r2"], seed=1,
            )
        )
        assert result.snapshots_taken == 1

    def test_live_system_advances_between_nodes(self, converged3):
        before = converged3.network.sim.now
        dice = make_orchestrator(converged3)
        dice.run_campaign(
            OrchestratorConfig(inputs_per_node=2, live_advance=1.0, seed=1)
        )
        assert converged3.network.sim.now >= before + 3.0

    def test_empty_node_list_rejected(self, converged3):
        dice = make_orchestrator(converged3)
        with pytest.raises(ValueError):
            dice.run_campaign(OrchestratorConfig(explorer_nodes=[]))

    def test_default_claims_from_initial_configs(self, converged3):
        from repro.bgp.ip import Prefix

        dice = make_orchestrator(converged3)
        assert dice.claims.claimed_origins(Prefix("10.1.0.0/16")) == {65001}

    def test_stop_after_first_fault(self, converged3_with_bug):
        from repro.bgp.config import AddNetwork
        from repro.bgp.ip import Prefix

        live = converged3_with_bug
        live.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        live.run(until=live.network.sim.now + 5)
        dice = make_orchestrator(live)
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=40, stop_after_first_fault=True, seed=3
            )
        )
        assert result.reports
        # Stopped early: not every node should have been explored with
        # the full budget once a fault surfaced at the first nodes.
        assert len(result.node_reports) <= 3

    def test_fault_report_stamping(self, converged3_with_bug):
        from repro.bgp.config import AddNetwork
        from repro.bgp.ip import Prefix

        live = converged3_with_bug
        live.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        live.run(until=live.network.sim.now + 5)
        dice = make_orchestrator(live)
        result = dice.run_campaign(
            OrchestratorConfig(inputs_per_node=30, seed=3)
        )
        assert result.reports
        for report in result.reports:
            assert report.snapshot_id
            assert report.wall_time_s > 0
            assert report.inputs_explored > 0
        assert result.time_to_detection()
        assert result.inputs_to_detection()
