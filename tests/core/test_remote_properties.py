"""Property-based round-trip tests for the wire-facing protocols.

Two layers carry campaign state across process boundaries: the frame
codec in :mod:`repro.core.remote` (length-prefixed pickle frames) and
the solver-cache delta protocol in :mod:`repro.concolic.solver`
(journalled events, take/replay, first-writer-wins merge).  Failover
correctness rests on both being exact inverses under arbitrary inputs,
including hostile ones — truncated and corrupted frames must fail
loudly with a *named* error, never return garbage or raise a stray
``AttributeError`` from pickle's opcode machinery.
"""

import pickle
import socket

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.concolic.solver import (  # noqa: E402
    SolverCache,
    model_events,
    pack_events,
    unpack_events,
)
from repro.core.remote import (  # noqa: E402
    decode_frame,
    encode_frame,
    recv_message,
)

# Messages are pickled tuples of primitives (request ids, tokens,
# packed byte blobs); nested containers cover the task/outcome shapes.
primitives = st.one_of(
    st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    st.binary(max_size=200),
    st.text(max_size=50),
    st.booleans(),
    st.none(),
)
messages = st.tuples(
    st.sampled_from(["task", "outcome", "error", "chunk", "commit",
                     "ping", "pong"]),
    st.lists(
        st.one_of(
            primitives,
            st.lists(primitives, max_size=5).map(tuple),
            st.dictionaries(st.text(max_size=10), primitives, max_size=5),
        ),
        max_size=5,
    ),
).map(lambda pair: (pair[0], *pair[1]))


class TestFrameCodecProperties:
    @given(message=messages)
    def test_encode_decode_round_trip(self, message):
        assert decode_frame(encode_frame(message)) == message

    @given(message=messages, cut=st.integers(min_value=0, max_value=300))
    def test_truncated_frame_is_a_named_error(self, message, cut):
        frame = encode_frame(message)
        truncated = frame[: min(cut, len(frame) - 1)]
        with pytest.raises(ValueError):
            decode_frame(truncated)

    @given(
        message=messages,
        position=st.integers(min_value=0, max_value=10_000),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_any_corrupted_byte_is_a_named_error(
        self, message, position, flip
    ):
        """A flipped byte anywhere in the frame — header, checksum, or
        payload — raises ValueError.  Never an unnamed exception from
        pickle internals, and (thanks to the CRC) never silently
        different content: this property originally caught plain
        length-prefixed pickle decoding ``("outcome",)`` from a
        corrupted ``("nutcome",)`` frame."""
        frame = bytearray(encode_frame(message))
        frame[position % len(frame)] ^= flip
        with pytest.raises(ValueError):
            decode_frame(bytes(frame))

    @given(message=messages)
    def test_recv_message_round_trips_over_a_real_socket_pair(
        self, message
    ):
        left, right = socket.socketpair()
        try:
            frame = encode_frame(message)
            left.sendall(frame)
            received = recv_message(right)
            assert received is not None
            decoded, wire_bytes = received
            assert decoded == message
            assert wire_bytes == len(frame)
        finally:
            left.close()
            right.close()

    @given(message=messages, cut=st.integers(min_value=1, max_value=300))
    def test_recv_message_mid_frame_eof_is_a_connection_error(
        self, message, cut
    ):
        frame = encode_frame(message)
        truncated = frame[: min(cut, len(frame) - 1)]
        left, right = socket.socketpair()
        try:
            left.sendall(truncated)
            left.close()
            with pytest.raises((ConnectionError, ValueError)):
                if recv_message(right) is None:
                    # 0 bytes delivered = clean EOF at a frame
                    # boundary, which is legitimate; force the
                    # mid-frame case to still be checked.
                    assert len(truncated) == 0
                    raise ConnectionError("clean EOF stands in")
        finally:
            right.close()


# -- CacheDelta take/replay ---------------------------------------------------

cache_keys = st.lists(
    st.integers(min_value=0, max_value=2 ** 64 - 1),
    min_size=1, max_size=4,
).map(tuple)
models = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=6),
    st.integers(min_value=0, max_value=255),
    max_size=4,
)
store_ops = st.lists(
    st.one_of(
        st.tuples(st.just("m"), cache_keys, models),
        st.tuples(st.just("f"), cache_keys, models),
    ),
    max_size=30,
)


def apply_ops(cache, ops):
    for kind, key, model in ops:
        if kind == "m":
            cache.store_model(key, model)
        else:
            cache.store_failure(key, model or None)


class TestCacheDeltaProperties:
    @settings(deadline=None)
    @given(ops=store_ops, max_entries=st.integers(min_value=1, max_value=8))
    def test_take_then_replay_reproduces_state_bit_exactly(
        self, ops, max_entries
    ):
        """A delta replayed onto a mirror at the same base generation
        reproduces the origin cache exactly — FIFO evictions included,
        which is what makes failover's rebuild-by-replay sound."""
        origin = SolverCache(max_entries=max_entries)
        mirror = SolverCache(max_entries=max_entries)
        apply_ops(origin, ops)
        mirror.replay_delta(origin.take_delta("n"))
        assert mirror.state_fingerprint() == origin.state_fingerprint()
        assert mirror.generation == origin.generation

    @settings(deadline=None)
    @given(ops=store_ops, split=st.integers(min_value=0, max_value=30))
    def test_incremental_deltas_equal_one_big_delta(self, ops, split):
        """Draining the journal mid-stream and replaying both deltas in
        order lands on the same state as one end-of-stream delta."""
        origin = SolverCache(max_entries=8)
        piecewise = SolverCache(max_entries=8)
        cut = min(split, len(ops))
        apply_ops(origin, ops[:cut])
        piecewise.replay_delta(origin.take_delta("n"))
        apply_ops(origin, ops[cut:])
        piecewise.replay_delta(origin.take_delta("n"))
        assert piecewise.state_fingerprint() == origin.state_fingerprint()

    @settings(deadline=None)
    @given(ops=store_ops)
    def test_replay_onto_wrong_generation_is_loud(self, ops):
        origin = SolverCache(max_entries=8)
        apply_ops(origin, ops)
        delta = origin.take_delta("n")
        if delta.count == 0:
            return  # an empty delta replays anywhere by construction
        behind = SolverCache(max_entries=8)
        behind.store_model((1,), {"a": 1})  # generation mismatch
        with pytest.raises(ValueError, match="generation"):
            behind.replay_delta(delta)

    @settings(deadline=None)
    @given(ops=store_ops)
    def test_pack_unpack_round_trip_and_model_subset(self, ops):
        origin = SolverCache(max_entries=64)
        apply_ops(origin, ops)
        delta = origin.take_delta("n")
        events = unpack_events(delta.packed_events)
        assert unpack_events(pack_events(events)) == events
        assert len(events) == delta.count
        broadcast = model_events(events)
        assert all(event[0] == "m" for event in broadcast)
        assert len(broadcast) == sum(1 for e in events if e[0] == "m")

    @settings(deadline=None)
    @given(ops=store_ops)
    def test_delta_pickles_compressed_even_after_reading_events(
        self, ops
    ):
        """The cached ``events`` property must never leak into the
        pickle — a delta ships compressed no matter what touched it."""
        origin = SolverCache(max_entries=64)
        apply_ops(origin, ops)
        delta = origin.take_delta("n")
        _ = delta.events  # populate the memo
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.packed_events == delta.packed_events
        assert clone.events == delta.events
        assert clone.count == delta.count

    @settings(deadline=None)
    @given(ops=store_ops, foreign=store_ops)
    def test_merge_is_first_writer_wins_and_generation_advances(
        self, ops, foreign
    ):
        cache = SolverCache(max_entries=64)
        apply_ops(cache, ops)
        own_models = {
            key: dict(model)
            for key, model in [
                (k, m) for kind, k, m in ops if kind == "m"
            ]
        }
        donor = SolverCache(max_entries=64)
        apply_ops(donor, foreign)
        events = model_events(donor.take_delta("donor").events)
        generation_before = cache.generation
        cache.merge_delta(events)
        assert cache.generation == generation_before + len(events)
        for key in own_models:
            if cache.lookup_model(key) is not None:
                # Never replaced by a merged foreign entry.
                assert not cache.is_merged(key)
