"""Tests for the consistent-snapshot protocol and snapshot cloning."""

import pytest

from repro.bgp.config import AddNetwork
from repro.bgp.ip import Prefix
from repro.core.live import bgp_process_factory
from repro.core.snapshot import SnapshotCoordinator


class TestAtomicCapture:
    def test_captures_all_nodes(self, converged3):
        snapshot = converged3.coordinator.capture_atomic("r1")
        assert set(snapshot.checkpoints) == {"r1", "r2", "r3"}
        assert snapshot.latency == 0.0

    def test_in_flight_captured(self, live3):
        live3.run(max_events=6)  # mid-handshake: messages in flight
        expected = len(live3.network.in_flight())
        snapshot = live3.coordinator.capture_atomic("r1")
        assert len(snapshot.channels) == expected


class TestMarkerProtocol:
    def test_completes_and_covers_all_nodes(self, converged3):
        snapshot = converged3.coordinator.capture("r2")
        assert set(snapshot.checkpoints) == {"r1", "r2", "r3"}
        assert snapshot.initiator == "r2"

    def test_latency_bounded_by_network(self, converged3):
        snapshot = converged3.coordinator.capture("r1")
        # Markers traverse the 2-hop line: latency > 0 but < 1 second
        # given ~20-25 ms per hop.
        assert 0 < snapshot.latency < 1.0

    def test_unknown_initiator_rejected(self, converged3):
        with pytest.raises(KeyError):
            converged3.coordinator.capture("ghost")

    def test_snapshot_during_convergence_is_consistent(self, live3):
        """Take the snapshot mid-churn; the cut must still be a valid
        global state: restoring it and running yields convergence with
        no duplicate or lost routes."""
        live3.run(max_events=10)
        snapshot = live3.coordinator.capture("r2")
        clone = snapshot.clone(bgp_process_factory, seed=99)
        clone.run(until=clone.sim.now + 60)
        prefixes = {
            str(p) for p in clone.processes["r3"].loc_rib.prefixes()
        }
        assert prefixes == {"10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16"}

    def test_snapshot_counter(self, converged3):
        coordinator = converged3.coordinator
        before = coordinator.snapshots_taken
        coordinator.capture("r1")
        coordinator.capture_atomic("r1")
        assert coordinator.snapshots_taken == before + 2

    def test_live_system_continues_after_snapshot(self, converged3):
        """The marker protocol must not disturb the live system."""
        routes_before = converged3.total_routes()
        converged3.coordinator.capture("r1")
        converged3.run(until=converged3.network.sim.now + 30)
        assert converged3.total_routes() == routes_before
        for router in converged3.routers():
            assert router.crash_count == 0

    def test_markers_invisible_to_routers(self, converged3):
        notifications_before = sum(
            session.stats.notifications_received
            for router in converged3.routers()
            for session in router.sessions.values()
        )
        converged3.coordinator.capture("r1")
        converged3.run(until=converged3.network.sim.now + 5)
        notifications_after = sum(
            session.stats.notifications_received
            for router in converged3.routers()
            for session in router.sessions.values()
        )
        assert notifications_after == notifications_before


class TestClone:
    def test_clone_matches_source_state(self, converged3):
        snapshot = converged3.coordinator.capture("r1")
        clone = snapshot.clone(bgp_process_factory, seed=1)
        for name in ("r1", "r2", "r3"):
            original = converged3.router(name)
            copy = clone.processes[name]
            assert set(copy.loc_rib.prefixes()) == set(
                original.loc_rib.prefixes()
            )
            assert copy.established_peers() == original.established_peers()

    def test_clone_isolated_from_live(self, converged3):
        snapshot = converged3.coordinator.capture("r1")
        clone = snapshot.clone(bgp_process_factory, seed=1)
        # Drive the clone hard: hijack a prefix and run.
        clone.processes["r3"].apply_config_change(
            AddNetwork(Prefix("10.1.0.0/16"))
        )
        clone.run(until=clone.sim.now + 30)
        # The live system must be bit-for-bit unaffected.
        live_route = converged3.router("r1").loc_rib.get(Prefix("10.1.0.0/16"))
        assert live_route is not None
        assert live_route.source == "static"
        assert converged3.router("r2").loc_rib.get(
            Prefix("10.1.0.0/16")
        ).peer == "r1"

    def test_clone_isolated_from_sibling_clones(self, converged3):
        snapshot = converged3.coordinator.capture("r1")
        clone_a = snapshot.clone(bgp_process_factory, seed=1)
        clone_b = snapshot.clone(bgp_process_factory, seed=2)
        clone_a.processes["r2"].adj_rib_in["r1"].clear()
        assert len(clone_b.processes["r2"].adj_rib_in["r1"]) > 0

    def test_clone_runs_independently(self, converged3):
        snapshot = converged3.coordinator.capture("r1")
        clone = snapshot.clone(bgp_process_factory, seed=1)
        live_now = converged3.network.sim.now
        clone.run(until=clone.sim.now + 100)
        assert converged3.network.sim.now == live_now

    def test_clone_keeps_sessions_alive(self, converged3):
        """Restored keepalive/hold timers must keep sessions up in the
        clone for the whole exploration horizon."""
        snapshot = converged3.coordinator.capture("r1")
        clone = snapshot.clone(bgp_process_factory, seed=1)
        clone.run(until=clone.sim.now + 120)
        for name in ("r1", "r2", "r3"):
            assert clone.processes[name].established_peers(), name

    def test_factory_name_mismatch_rejected(self, converged3):
        snapshot = converged3.coordinator.capture("r1")

        # A factory that renames the process must be refused.
        def renaming_factory(checkpoint):
            router = bgp_process_factory(checkpoint)
            router.name = "imposter"
            return router

        with pytest.raises(ValueError):
            snapshot.clone(renaming_factory, seed=1)


class TestDisconnectedTopology:
    def test_capture_with_isolated_node(self):
        from repro import NeighborConfig, RouterConfig, IPv4Address, LiveSystem
        from repro.net.link import LinkProfile

        configs = [
            RouterConfig(name="a", local_as=1,
                         router_id=IPv4Address("1.1.1.1"),
                         neighbors=(NeighborConfig(peer="b", peer_as=2),)),
            RouterConfig(name="b", local_as=2,
                         router_id=IPv4Address("2.2.2.2"),
                         neighbors=(NeighborConfig(peer="a", peer_as=1),)),
            RouterConfig(name="island", local_as=3,
                         router_id=IPv4Address("3.3.3.3")),
        ]
        live = LiveSystem.build(
            configs, [("a", "b", LinkProfile.lan())], seed=0
        )
        live.converge()
        coordinator = SnapshotCoordinator(live.network)
        snapshot = coordinator.capture("a")
        assert "island" in snapshot.checkpoints
