"""Tests for the fault taxonomy."""

import pytest

from repro.core.faultclass import (
    FAULT_OPERATOR_MISTAKE,
    FAULT_POLICY_CONFLICT,
    FAULT_PROGRAMMING_ERROR,
    FaultReport,
    first_per_class,
)


def report(fault_class=FAULT_PROGRAMMING_ERROR, wall=1.0, **kwargs):
    fields = dict(
        fault_class=fault_class,
        property_name="p",
        node="r1",
        detected_at=0.0,
        wall_time_s=wall,
    )
    fields.update(kwargs)
    return FaultReport(**fields)


class TestFaultReport:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            report(fault_class="cosmic_ray")

    def test_headline_mentions_class_and_node(self):
        text = report(input_summary="UpdateMessage(...)").headline()
        assert FAULT_PROGRAMMING_ERROR in text
        assert "r1" in text
        assert "UpdateMessage" in text

    def test_headline_without_input(self):
        assert "n/a" in report().headline()


class TestFirstPerClass:
    def test_earliest_wins(self):
        reports = [
            report(wall=5.0),
            report(wall=2.0),
            report(fault_class=FAULT_POLICY_CONFLICT, wall=9.0),
        ]
        first = first_per_class(reports)
        assert first[FAULT_PROGRAMMING_ERROR].wall_time_s == 2.0
        assert first[FAULT_POLICY_CONFLICT].wall_time_s == 9.0
        assert FAULT_OPERATOR_MISTAKE not in first

    def test_empty(self):
        assert first_per_class([]) == {}
