"""Tests for the narrow information-sharing interface.

The central claim: raw state physically cannot cross the interface —
check functions may only return bool/int/bytes, everything else raises,
and every crossing is audited.
"""

import pytest

from repro.bgp.ip import Prefix
from repro.core.sharing import (
    SharingEndpoint,
    SharingRegistry,
    SharingViolation,
)


def endpoint(asn=65001, node="r1"):
    return SharingEndpoint(asn=asn, node=node)


class TestEndpoint:
    def test_register_and_respond(self):
        ep = endpoint()
        ep.register("is_happy", lambda: True)
        assert ep.respond(65002, "is_happy") is True

    def test_duplicate_registration_rejected(self):
        ep = endpoint()
        ep.register("x", lambda: True)
        with pytest.raises(ValueError):
            ep.register("x", lambda: False)

    def test_unknown_check_rejected(self):
        with pytest.raises(KeyError):
            endpoint().respond(65002, "nonexistent")

    def test_rich_object_response_blocked(self):
        """A check that leaks a route object must raise, not disclose."""
        ep = endpoint()
        leaky = {"my": "whole RIB"}
        ep.register("leak", lambda: leaky)
        with pytest.raises(SharingViolation):
            ep.respond(65002, "leak")

    def test_string_response_blocked(self):
        ep = endpoint()
        ep.register("leak", lambda: "confidential config text")
        with pytest.raises(SharingViolation):
            ep.respond(65002, "leak")

    def test_none_response_blocked(self):
        ep = endpoint()
        ep.register("leak", lambda: None)
        with pytest.raises(SharingViolation):
            ep.respond(65002, "leak")

    def test_commitment_allowed(self):
        ep = endpoint()
        ep.register("commit", lambda salt: ep.commit("local-value", salt))
        digest = ep.respond(65002, "commit", b"salt")
        assert isinstance(digest, bytes)
        assert len(digest) == 32

    def test_audit_log_records_queries(self):
        ep = endpoint()
        ep.register("check", lambda prefix: True)
        ep.respond(65002, "check", Prefix("10.0.0.0/8"), now=4.2)
        assert len(ep.audit_log) == 1
        entry = ep.audit_log[0]
        assert entry.requester_as == 65002
        assert entry.responder_as == 65001
        assert entry.check == "check"
        assert entry.args == ("10.0.0.0/8",)  # scrubbed to a string
        assert entry.response_type == "bool"
        assert entry.time == 4.2

    def test_audit_scrubs_rich_args(self):
        ep = endpoint()
        ep.register("check", lambda anything: True)
        ep.respond(65002, "check", object())
        assert ep.audit_log[0].args == ("object",)

    def test_names_listing(self):
        ep = endpoint()
        ep.register("b", lambda: True)
        ep.register("a", lambda: True)
        assert ep.names() == ["a", "b"]


class TestRegistry:
    def test_endpoint_routing(self):
        registry = SharingRegistry()
        ep = endpoint(asn=65001)
        ep.register("ok", lambda: True)
        registry.add_endpoint(ep)
        assert registry.query(65002, 65001, "ok") is True

    def test_duplicate_endpoint_rejected(self):
        registry = SharingRegistry()
        registry.add_endpoint(endpoint(asn=65001))
        with pytest.raises(ValueError):
            registry.add_endpoint(endpoint(asn=65001))

    def test_query_unknown_as(self):
        with pytest.raises(KeyError):
            SharingRegistry().query(1, 2, "x")

    def test_claims_exact(self):
        registry = SharingRegistry()
        registry.claim_origin(65001, Prefix("10.1.0.0/16"))
        registry.claim_origin(65009, Prefix("10.1.0.0/16"))
        assert registry.claimed_origins(Prefix("10.1.0.0/16")) == {
            65001, 65009,
        }
        assert registry.claimed_origins(Prefix("10.2.0.0/16")) == frozenset()

    def test_covering_claims(self):
        registry = SharingRegistry()
        registry.claim_origin(65001, Prefix("10.0.0.0/8"))
        registry.claim_origin(65002, Prefix("10.1.0.0/16"))
        owners = registry.covering_claims(Prefix("10.1.128.0/17"))
        assert owners == {65001, 65002}
        owners = registry.covering_claims(Prefix("10.2.0.0/16"))
        assert owners == {65001}

    def test_claims_by(self):
        registry = SharingRegistry()
        registry.claim_origin(65001, Prefix("10.0.0.0/8"))
        registry.claim_origin(65001, Prefix("192.168.0.0/16"))
        assert registry.claims_by(65001) == [
            Prefix("10.0.0.0/8"), Prefix("192.168.0.0/16"),
        ]
        assert registry.claims_by(
            65001, covering=Prefix("10.5.0.0/16")
        ) == [Prefix("10.0.0.0/8")]

    def test_from_configs(self, converged3):
        registry = SharingRegistry.from_configs(converged3.initial_configs)
        assert registry.claimed_origins(Prefix("10.1.0.0/16")) == {65001}
        assert registry.all_claimed_prefixes() == [
            Prefix("10.1.0.0/16"), Prefix("10.2.0.0/16"),
            Prefix("10.3.0.0/16"),
        ]
