"""Shared fixtures for the campaign-determinism test suites.

``tests/core/test_parallel.py`` and ``tests/core/test_pipeline.py``
both assert that execution mode (worker count, capture pipelining)
never changes campaign results; they must build the same faulty system
and compare the same fingerprint fields, so those live here once.
"""

import dataclasses

from repro import quickstart_system
from repro.bgp import faults
from repro.bgp.config import AddNetwork
from repro.bgp.ip import Prefix


def faulty_live():
    """A converged system with a crash bug on r2 and a hijack at r3."""
    live = quickstart_system(seed=42)
    router = live.router("r2")
    router.config = dataclasses.replace(
        router.config,
        enabled_bugs=frozenset({faults.BUG_COMMUNITY_CRASH}),
    )
    live.converge()
    live.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
    live.run(until=live.network.sim.now + 5)
    return live


def report_fingerprint(result):
    """Everything deterministic about a campaign's fault reports.

    Wall-clock stamps vary by machine and ``snapshot_id`` comes from a
    process-global counter, so both are excluded.
    """
    return [
        (r.fault_class, r.property_name, r.node, r.detected_at,
         r.input_summary, r.inputs_explored)
        for r in result.reports
    ]


def node_fingerprint(result):
    """The deterministic per-node exploration counters."""
    return [
        (n.node, n.executions, n.unique_paths, n.branch_coverage,
         n.shape_coverage, n.crashes, len(n.violations))
        for n in result.node_reports
    ]
