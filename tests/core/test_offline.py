"""Tests for the offline parser-testing harness."""

from repro.bgp.messages import KeepaliveMessage
from repro.core.offline import (
    OfflineParserTester,
    ParserFinding,
    VERDICT_OK,
)


class TestOfflineSession:
    def test_healthy_parser_never_crashes(self):
        tester = OfflineParserTester(seed=1)
        report = tester.run(budget=300)
        assert report.inputs >= 250
        assert report.crashes == []
        assert report.ok > 0
        assert report.protocol_errors > 0  # concolic reaches error paths

    def test_error_histogram_populated(self):
        tester = OfflineParserTester(seed=2)
        report = tester.run(budget=200)
        assert report.error_subcodes
        for (code, _subcode), count in report.error_subcodes.items():
            assert 1 <= code <= 6
            assert count >= 1

    def test_coverage_accounting(self):
        tester = OfflineParserTester(seed=3)
        report = tester.run(budget=150)
        assert report.unique_paths > 20
        assert report.branch_coverage > 20
        assert report.duration > 0

    def test_corpus_replayed(self):
        tester = OfflineParserTester(seed=4)
        tester.add_corpus([KeepaliveMessage().encode(), b"garbage"])
        report = tester.run(budget=10)
        # Corpus inputs counted toward the budget: one decodes cleanly,
        # one is rejected as a header error.
        assert report.inputs == 10
        assert report.protocol_errors >= 1
        assert report.crashes == []

    def test_summary_rendering(self):
        tester = OfflineParserTester(seed=5)
        report = tester.run(budget=60)
        text = report.summary()
        assert "offline parser test" in text
        assert "protocol errors" in text

    def test_finding_hexdump_truncates(self):
        finding = ParserFinding(data=b"\xff" * 200, exception="X", via="corpus")
        assert len(finding.hexdump()) <= 96

    def test_deterministic_given_seed(self):
        a = OfflineParserTester(seed=9).run(budget=80)
        b = OfflineParserTester(seed=9).run(budget=80)
        assert (a.ok, a.protocol_errors, a.unique_paths) == (
            b.ok, b.protocol_errors, b.unique_paths,
        )

    def test_verdict_constants(self):
        assert VERDICT_OK == "ok"
