"""The documentation stays checkable from tier-1.

Runs the same validation CI's docs job runs (``scripts/check_docs.py``):
required docs exist, internal markdown links resolve, and fenced
``>>>`` examples pass doctest.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_checker():
    path = os.path.join(REPO_ROOT, "scripts", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


REQUIRED_DOCS = (
    "README.md",
    os.path.join("docs", "architecture.md"),
    os.path.join("docs", "examples.md"),
)


class TestDocs:
    def test_required_docs_exist(self):
        for relative in REQUIRED_DOCS:
            assert os.path.exists(os.path.join(REPO_ROOT, relative)), relative

    def test_no_broken_links_or_doctests(self):
        checker = load_checker()
        errors = []
        for path in checker.default_files():
            errors.extend(checker.check_file(path))
        assert errors == []

    def test_checker_flags_broken_link(self, tmp_path):
        checker = load_checker()
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](./does-not-exist.md)")
        assert checker.check_file(str(bad))

    def test_checker_flags_failing_doctest(self, tmp_path):
        checker = load_checker()
        bad = tmp_path / "bad.md"
        bad.write_text("```python\n>>> 1 + 1\n3\n```\n")
        errors = checker.check_file(str(bad))
        assert any("doctest" in error for error in errors)

    def test_readme_links_docs(self):
        with open(os.path.join(REPO_ROOT, "README.md"),
                  encoding="utf-8") as handle:
            text = handle.read()
        assert "docs/architecture.md" in text
        assert "docs/examples.md" in text
