"""End-to-end integration tests: the paper's headline claims.

Each test here corresponds to a sentence in the demo paper's abstract or
section 3: DiCE "quickly detects three important classes of faults,
resulting from configuration mistakes, policy conflicts and programming
errors", operating "alongside the deployed system but in isolation from
it".
"""

import dataclasses

import pytest

from repro import DiceOrchestrator, OrchestratorConfig, quickstart_system
from repro.bgp import faults
from repro.bgp.config import AddNetwork
from repro.bgp.ip import Prefix
from repro.checks import default_property_suite
from repro.core.faultclass import (
    FAULT_OPERATOR_MISTAKE,
    FAULT_POLICY_CONFLICT,
    FAULT_PROGRAMMING_ERROR,
)
from repro.core.live import LiveSystem
from repro.topo.gadgets import build_bad_gadget


class TestProgrammingErrorDetection:
    def test_concolic_campaign_finds_injected_bug(self):
        live = quickstart_system(seed=5)
        router = live.router("r2")
        router.config = dataclasses.replace(
            router.config,
            enabled_bugs=frozenset({faults.BUG_COMMUNITY_CRASH}),
        )
        live.converge()
        dice = DiceOrchestrator(live, default_property_suite())
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=250,
                explorer_nodes=["r2"],
                grammar_seeds=5,
                seed=11,
            )
        )
        assert FAULT_PROGRAMMING_ERROR in result.fault_classes_found()
        report = next(
            r for r in result.reports
            if r.fault_class == FAULT_PROGRAMMING_ERROR
        )
        assert "community_crash" in str(report.evidence)

    def test_live_router_never_crashed_by_exploration(self):
        live = quickstart_system(seed=5)
        router = live.router("r2")
        router.config = dataclasses.replace(
            router.config,
            enabled_bugs=frozenset({faults.BUG_COMMUNITY_CRASH}),
        )
        live.converge()
        dice = DiceOrchestrator(live, default_property_suite())
        dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=100, explorer_nodes=["r2"], seed=11
            )
        )
        # The bug was triggered in clones only.
        assert live.router("r2").crash_count == 0


class TestOperatorMistakeDetection:
    def test_hijack_configuration_change_detected(self):
        live = quickstart_system(seed=5)
        live.converge()
        dice = DiceOrchestrator(live, default_property_suite())
        # The mistake happens after DiCE is deployed.
        live.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        live.run(until=live.network.sim.now + 5)
        result = dice.run_campaign(
            OrchestratorConfig(inputs_per_node=10, seed=2)
        )
        assert FAULT_OPERATOR_MISTAKE in result.fault_classes_found()
        report = next(
            r for r in result.reports
            if r.fault_class == FAULT_OPERATOR_MISTAKE
        )
        assert report.evidence.get("prefix") == "10.1.0.0/16"

    def test_clean_system_raises_no_alarms(self):
        live = quickstart_system(seed=5)
        live.converge()
        dice = DiceOrchestrator(live, default_property_suite())
        result = dice.run_campaign(
            OrchestratorConfig(inputs_per_node=20, seed=2)
        )
        assert result.fault_classes_found() == []


class TestPolicyConflictDetection:
    def test_bad_gadget_oscillation_detected(self):
        configs, links = build_bad_gadget()
        live = LiveSystem.build(configs, links, seed=7)
        live.run(until=3)
        dice = DiceOrchestrator(live, default_property_suite())
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=5,
                horizon=15.0,
                explorer_nodes=["r1"],
                seed=4,
            )
        )
        assert FAULT_POLICY_CONFLICT in result.fault_classes_found()


class TestIsolation:
    def test_campaign_leaves_live_state_untouched(self):
        live = quickstart_system(seed=5)
        live.converge()
        fingerprint_before = [
            (name, sorted(str(p) for p in live.router(name).loc_rib.prefixes()))
            for name in ("r1", "r2", "r3")
        ]
        dice = DiceOrchestrator(live, default_property_suite())
        dice.run_campaign(
            OrchestratorConfig(inputs_per_node=30, seed=6, live_advance=0.0)
        )
        fingerprint_after = [
            (name, sorted(str(p) for p in live.router(name).loc_rib.prefixes()))
            for name in ("r1", "r2", "r3")
        ]
        assert fingerprint_before == fingerprint_after

    def test_exploration_against_churning_live_system(self):
        """Start-from-current-state: DiCE runs while the system moves."""
        live = quickstart_system(seed=5)
        live.converge()
        live.enable_churn(
            "r1", Prefix("10.40.0.0/16"), period=2.0,
            start_at=live.network.sim.now + 1.0,
        )
        dice = DiceOrchestrator(live, default_property_suite())
        result = dice.run_campaign(
            OrchestratorConfig(inputs_per_node=10, cycles=2, seed=8,
                               live_advance=2.0)
        )
        assert live.churn_events > 0
        assert result.inputs_explored > 0
        # Churn alone must not be misread as a fault.
        assert FAULT_POLICY_CONFLICT not in result.fault_classes_found()


@pytest.mark.slow
class TestDemo27Campaign:
    def test_figure1_experiment_runs(self, demo27_topology):
        """The demo itself: DiCE exploring the 27-router topology."""
        live = LiveSystem.build(
            demo27_topology.configs, demo27_topology.links, seed=27
        )
        live.converge(deadline=600)
        dice = DiceOrchestrator(live, default_property_suite())
        nodes = demo27_topology.nodes_in_tier(2)[:3]
        result = dice.run_campaign(
            OrchestratorConfig(
                inputs_per_node=10, explorer_nodes=nodes, seed=27,
                horizon=3.0,
            )
        )
        assert result.snapshots_taken == 3
        # Generational search may exhaust its frontier just short of the
        # budget; near-full usage is the expectation.
        assert 20 <= result.inputs_explored <= 30
        assert result.fault_classes_found() == []  # healthy topology
