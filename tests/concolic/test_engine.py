"""Tests for the concolic exploration engine."""

import pytest

from repro.concolic.engine import (
    ConcolicEngine,
    ExplorationSpec,
    RandomByteExplorer,
    explore,
)
from repro.concolic.frontier import Frontier, FrontierDiscipline
from repro.concolic.path import flip_at, flip_signature, held_path, signature
from repro.concolic.solver import Solver
from repro.concolic.symbolic import SymBytes


def branchy_program(sym):
    """A small program with a nested branch structure and a rare crash."""
    if sym[0] > 100:
        if sym[1] == 77:
            raise ValueError("crash path")
        return "high"
    if sym[0] > 50:
        return "mid"
    if sym[1] & 0x01:
        return "low-odd"
    return "low-even"


class TestRunOnce:
    def test_records_path(self):
        engine = ConcolicEngine(branchy_program)
        execution = engine.run_once(SymBytes.mark_all(b"\x00\x00"))
        assert execution.result == "low-even"
        assert len(execution.branches) == 3
        assert not execution.crashed

    def test_captures_crash(self):
        engine = ConcolicEngine(branchy_program)
        execution = engine.run_once(SymBytes.mark_all(bytes([200, 77])))
        assert execution.crashed
        assert isinstance(execution.exception, ValueError)

    def test_harness_errors_propagate(self):
        def bad(sym):
            raise KeyboardInterrupt

        engine = ConcolicEngine(bad)
        with pytest.raises(KeyboardInterrupt):
            engine.run_once(SymBytes.mark_all(b"\x00"))


class TestExplore:
    def test_discovers_all_paths(self):
        engine = ConcolicEngine(branchy_program, max_executions=40)
        result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
        # Paths: high-crash, high-ok, mid, low-odd, low-even = 5.
        assert result.unique_paths == 5
        assert result.frontier_exhausted

    def test_finds_rare_crash(self):
        engine = ConcolicEngine(branchy_program, max_executions=40)
        result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
        assert len(result.crashes) == 1
        crash_input = result.crashes[0].input.concrete
        assert crash_input[0] > 100
        assert crash_input[1] == 77

    def test_stop_on_first_crash(self):
        engine = ConcolicEngine(
            branchy_program, max_executions=100, stop_on_first_crash=True
        )
        result = engine.explore([SymBytes.mark_all(bytes([200, 77]))])
        assert result.crashes
        assert result.executions == 1

    def test_budget_respected(self):
        engine = ConcolicEngine(branchy_program, max_executions=3)
        result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
        assert result.executions == 3

    def test_no_marks_no_children(self):
        engine = ConcolicEngine(branchy_program, max_executions=10)
        result = engine.explore([SymBytes(b"\x00\x00", {})])
        assert result.executions == 1
        assert result.unique_paths == 1

    def test_progress_samples_recorded(self):
        engine = ConcolicEngine(branchy_program, max_executions=10)
        result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
        assert result.progress[0][0] == 1
        assert result.progress[-1][0] == result.executions

    def test_deterministic_given_seeded_solver(self):
        def run():
            engine = ConcolicEngine(
                branchy_program, solver=Solver(seed=5), max_executions=30
            )
            result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
            return (result.executions, result.unique_paths,
                    len(result.crashes))

        assert run() == run()

    def test_paths_per_execution_metric(self):
        engine = ConcolicEngine(branchy_program, max_executions=20)
        result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
        assert 0 < result.paths_per_execution() <= 1.0


class TestPathHelpers:
    def _branches(self, data):
        engine = ConcolicEngine(branchy_program)
        return engine.run_once(SymBytes.mark_all(data)).branches

    def test_held_path_satisfied_by_input(self):
        branches = self._branches(bytes([10, 2]))
        for constraint in held_path(branches):
            assert constraint.holds({"b0": 10, "b1": 2})

    def test_flip_at_negates_index(self):
        branches = self._branches(bytes([10, 2]))
        flipped = flip_at(branches, 0)
        # Original first branch: b0 > 100 was False; negation: b0 > 100.
        assert not flipped[0].holds({"b0": 10, "b1": 2})
        assert flipped[0].holds({"b0": 200, "b1": 2})

    def test_flip_at_bounds(self):
        branches = self._branches(bytes([10, 2]))
        with pytest.raises(IndexError):
            flip_at(branches, 99)

    def test_signature_stable(self):
        a = self._branches(bytes([10, 2]))
        b = self._branches(bytes([12, 2]))
        assert signature(a) == signature(b)  # same path

    def test_flip_signature_distinct_per_index(self):
        branches = self._branches(bytes([10, 2]))
        sigs = {flip_signature(branches, i) for i in range(len(branches))}
        assert len(sigs) == len(branches)


class TestRandomBaseline:
    def test_explores_some_paths(self):
        explorer = RandomByteExplorer(branchy_program, seed=1,
                                      max_executions=60)
        result = explorer.explore([SymBytes.mark_all(b"\x00\x00")])
        assert result.executions == 60
        assert result.unique_paths >= 2

    def test_concolic_beats_random_on_narrow_condition(self):
        """The EXP-EXPLORE shape: the nested b1 == 77 crash is a 1/256
        target random mutation rarely hits, while concolic solves it."""
        budget = 30
        concolic = ConcolicEngine(branchy_program, max_executions=budget)
        concolic_result = concolic.explore([SymBytes.mark_all(b"\x00\x00")])
        random_explorer = RandomByteExplorer(
            branchy_program, seed=9, max_executions=budget
        )
        random_result = random_explorer.explore(
            [SymBytes.mark_all(b"\x00\x00")]
        )
        assert concolic_result.unique_paths >= random_result.unique_paths
        assert concolic_result.crashes

    def test_unmarked_input_returns_same(self):
        explorer = RandomByteExplorer(branchy_program, seed=1,
                                      max_executions=5)
        result = explorer.explore([SymBytes(b"\x00\x00", {})])
        assert result.executions == 5


class TestExplorationSpec:
    def test_defaults(self):
        spec = ExplorationSpec()
        assert spec.frontier is FrontierDiscipline.BFS
        assert spec.shards == 1

    def test_string_disciplines_resolve_to_the_enum(self):
        assert (ExplorationSpec(frontier="dfs").frontier
                is FrontierDiscipline.DFS)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ValueError, match="max_executions"):
            ExplorationSpec(max_executions=0)
        with pytest.raises(ValueError, match="max_branches_per_run"):
            ExplorationSpec(max_branches_per_run=0)
        with pytest.raises(ValueError, match="shards"):
            ExplorationSpec(shards=0)

    def test_shards_require_the_sharded_discipline(self):
        with pytest.raises(ValueError, match="sharded"):
            ExplorationSpec(frontier="bfs", shards=2)
        assert ExplorationSpec(frontier="sharded", shards=4).shards == 4

    def test_spec_pickles(self):
        import pickle

        spec = ExplorationSpec(frontier="sharded", shards=4,
                               max_executions=50)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_engine_exposes_its_spec(self):
        spec = ExplorationSpec(max_executions=7)
        assert ConcolicEngine(branchy_program, spec=spec).spec is spec

    def test_legacy_keywords_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="ExplorationSpec"):
            engine = ConcolicEngine(
                branchy_program, max_executions=9, frontier="dfs"
            )
        assert engine.spec.max_executions == 9
        assert engine.spec.frontier is FrontierDiscipline.DFS

    def test_spec_construction_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ConcolicEngine(branchy_program, spec=ExplorationSpec())

    def test_spec_and_legacy_keywords_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            ConcolicEngine(
                branchy_program, max_executions=9, spec=ExplorationSpec()
            )

    def test_module_level_explore(self):
        result = explore(
            branchy_program,
            [SymBytes.mark_all(b"\x00\x00")],
            spec=ExplorationSpec(max_executions=40),
        )
        assert result.unique_paths == 5
        assert result.crashes


class TestShardedExploration:
    def spec(self, shards):
        return ExplorationSpec(frontier="sharded", shards=shards,
                               max_executions=40)

    def test_sharded_explore_finds_every_path(self):
        engine = ConcolicEngine(branchy_program, spec=self.spec(4))
        result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
        assert result.unique_paths == 5
        assert result.crashes
        assert result.frontier_exhausted

    def test_shard_count_does_not_change_the_outcome(self):
        def summary(shards):
            engine = ConcolicEngine(
                branchy_program, solver=Solver(seed=3), spec=self.spec(shards)
            )
            result = engine.explore([SymBytes.mark_all(b"\x00\x00")])
            return (result.unique_paths, result.branch_coverage,
                    result.shape_coverage, len(result.crashes))

        assert summary(1) == summary(2) == summary(4)

    def test_run_shard_respects_budget_and_mutates_the_frontier(self):
        engine = ConcolicEngine(branchy_program, spec=self.spec(1))
        frontier = Frontier.from_seeds(
            [SymBytes.mark_all(b"\x00\x00")], FrontierDiscipline.SHARDED
        )
        result = engine.run_shard(frontier, budget=1)
        assert result.executions == 1
        assert frontier.seen_paths  # dedup state accumulated in place
        assert frontier.entries  # solved children queued for the next round
        leftover = engine.run_shard(frontier, budget=100)
        assert leftover.executions >= 1
        assert result.unique_paths + leftover.unique_paths == 5

    def test_shard_results_report_solver_stats_as_deltas(self):
        """Shards share one engine/solver here; summing per-shard
        counters must equal the totals, never double-count."""
        engine = ConcolicEngine(branchy_program, spec=self.spec(1))
        frontier = Frontier.from_seeds(
            [SymBytes.mark_all(b"\x00\x00")], FrontierDiscipline.SHARDED
        )
        first = engine.run_shard(frontier, budget=2)
        second = engine.run_shard(frontier, budget=100)
        total = first.solver_queries + second.solver_queries
        assert total == engine._solver.stats.queries
