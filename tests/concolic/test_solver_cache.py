"""Tests for the solver's constraint-system memoization cache.

The cache's soundness contract mirrors the solver's: every model it
hands back is re-verified against the *current* full constraint set, so
a stale or colliding entry can cost a miss but never a wrong answer.
"""

from repro.concolic.expr import BinOp, Const, Constraint, Var
from repro.concolic.solver import Solver, SolverCache


def byte(name):
    return Var(name, 0, 255)


def eq(var, value):
    return Constraint("eq", var, Const(value))


def system():
    """A small satisfiable decoder-style system."""
    a, b = byte("a"), byte("b")
    return [
        Constraint("eq", BinOp("or", BinOp("shl", a, Const(8)), b),
                   Const(0x1234)),
        Constraint("le", b, Const(0x80)),
    ]


class TestCacheHits:
    def test_second_identical_query_hits(self):
        solver = Solver(seed=1)
        first = solver.solve(system())
        assert first is not None
        second = solver.solve(system())
        assert second == first
        assert solver.stats.cache_hits == 1
        assert solver.stats.cache_misses == 1
        assert solver.stats.queries == 2
        assert solver.stats.sat == 2

    def test_key_is_order_insensitive(self):
        constraints = system()
        solver = Solver(seed=1)
        assert solver.solve(constraints) is not None
        assert solver.solve(list(reversed(constraints))) is not None
        assert solver.stats.cache_hits == 1

    def test_cached_model_verifies_against_full_constraint_set(self):
        """The satellite-task contract: a cache hit is re-verified.

        Poison the cache with a model that does NOT satisfy the system;
        the solver must fall through to a real solve and return a model
        that satisfies every constraint.
        """
        constraints = system()
        cache = SolverCache()
        cache.store_model(cache.key(constraints), {"a": 0, "b": 0})
        solver = Solver(seed=1, cache=cache)
        model = solver.solve(constraints)
        assert model is not None
        assert all(constraint.holds(model) for constraint in constraints)
        assert solver.stats.cache_hits == 0

    def test_cached_model_missing_variable_is_a_miss(self):
        constraints = [eq(byte("x"), 7)]
        cache = SolverCache()
        cache.store_model(cache.key(constraints), {"y": 7})
        solver = Solver(seed=1, cache=cache)
        assert solver.solve(constraints) == {"x": 7}

    def test_failure_cached_per_hint(self):
        unsat = [eq(byte("x"), 1), eq(byte("x"), 2)]
        solver = Solver(seed=1, max_repair_rounds=5, max_restarts=2)
        assert solver.solve(unsat, hint={"x": 1}) is None
        assert solver.solve(unsat, hint={"x": 1}) is None
        assert solver.stats.cache_hits == 1
        # A different hint is a genuinely different search; no hit.
        assert solver.solve(unsat, hint={"x": 2}) is None
        assert solver.stats.cache_hits == 1

    def test_failure_cached_per_budget(self):
        """A low-budget solver's failure must not suppress a bigger
        solver sharing the cache — its search might succeed."""
        unsat = [eq(byte("x"), 1), eq(byte("x"), 2)]
        cache = SolverCache()
        small = Solver(seed=1, max_repair_rounds=5, max_restarts=2,
                       cache=cache)
        assert small.solve(unsat, hint={"x": 1}) is None
        big = Solver(seed=1, cache=cache)
        assert big.solve(unsat, hint={"x": 1}) is None
        # The big solver searched for itself: miss, not a cached hit.
        assert big.stats.cache_hits == 0
        assert big.stats.cache_misses == 1

    def test_cache_shareable_across_solvers(self):
        cache = SolverCache()
        first = Solver(seed=1, cache=cache)
        model = first.solve(system())
        assert model is not None
        second = Solver(seed=99, cache=cache)
        assert second.solve(system()) == model
        assert second.stats.cache_hits == 1


class TestCacheControls:
    def test_disabled_cache_never_counts(self):
        solver = Solver(seed=1, enable_cache=False)
        assert solver.cache is None
        assert solver.solve(system()) is not None
        assert solver.solve(system()) is not None
        assert solver.stats.cache_hits == 0
        assert solver.stats.cache_misses == 0

    def test_non_positive_bound_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="max_entries"):
            SolverCache(max_entries=0)
        with pytest.raises(ValueError, match="max_entries"):
            SolverCache(max_entries=-1)

    def test_eviction_bounds_entries(self):
        cache = SolverCache(max_entries=4)
        solver = Solver(seed=1, cache=cache)
        for value in range(10):
            assert solver.solve([eq(byte("x"), value)]) == {"x": value}
        assert cache.models_cached <= 4

    def test_hit_rate(self):
        solver = Solver(seed=1)
        assert solver.stats.cache_hit_rate() == 0.0
        solver.solve(system())
        solver.solve(system())
        assert solver.stats.cache_hit_rate() == 0.5


class TestDeltaProtocol:
    """Journal, delta shipping, replay, and cross-node merge."""

    def warm(self, values, max_entries=4096, seed=1):
        cache = SolverCache(max_entries=max_entries)
        solver = Solver(seed=seed, cache=cache)
        for value in values:
            solver.solve([eq(byte("x"), value)])
        return cache

    def test_take_delta_drains_journal(self):
        cache = self.warm(range(3))
        delta = cache.take_delta("n1")
        assert len(delta) == 3
        assert delta.node == "n1"
        assert delta.base_generation == 0
        assert len(cache.take_delta("n1")) == 0  # journal drained

    def test_replay_reproduces_state_exactly(self):
        cache = self.warm(range(5))
        mirror = SolverCache()
        mirror.replay_delta(cache.take_delta("n1"))
        assert mirror.state_fingerprint() == cache.state_fingerprint()
        assert mirror.generation == cache.generation

    def test_replay_reproduces_fifo_eviction(self):
        cache = self.warm(range(10), max_entries=3)
        assert cache.models_cached <= 3
        mirror = SolverCache(max_entries=3)
        mirror.replay_delta(cache.take_delta("n1"))
        assert mirror.state_fingerprint() == cache.state_fingerprint()

    def test_replay_includes_failures(self):
        unsat = [eq(byte("x"), 1), eq(byte("x"), 2)]
        cache = SolverCache()
        solver = Solver(seed=1, max_repair_rounds=3, max_restarts=1,
                        cache=cache)
        assert solver.solve(unsat, hint={"x": 1}) is None
        mirror = SolverCache()
        mirror.replay_delta(cache.take_delta("n1"))
        assert mirror.is_failure(
            mirror.key(unsat), {"x": 1}, (3, 1)
        )

    def test_replay_onto_wrong_generation_rejected(self):
        import pytest

        cache = self.warm(range(2))
        delta = cache.take_delta("n1")
        stale = SolverCache()
        stale.store_model((1,), {"x": 0})  # generation now 1, not 0
        with pytest.raises(ValueError, match="generation"):
            stale.replay_delta(delta)

    def test_merge_is_first_writer_wins(self):
        ours = SolverCache()
        key = ours.key([eq(byte("x"), 7)])
        ours.store_model(key, {"x": 7})
        foreign = (("m", key, (("x", 99),)),)
        added = ours.merge_delta(foreign)
        assert added == 0  # present entries never replaced
        assert ours.lookup_model(key) == {"x": 7}
        assert not ours.is_merged(key)

    def test_merge_adds_missing_entries_and_marks_them(self):
        ours = SolverCache()
        theirs = self.warm([5], seed=2)
        delta = theirs.take_delta("n2")
        assert ours.merge_delta(delta.events) == 1
        key = ours.key([eq(byte("x"), 5)])
        assert ours.lookup_model(key) == {"x": 5}
        assert ours.is_merged(key)
        # A cross-node hit is counted as such by a solver using ours.
        solver = Solver(seed=3, cache=ours)
        assert solver.solve([eq(byte("x"), 5)]) == {"x": 5}
        assert solver.stats.cache_merged_hits == 1

    def test_locally_resolved_entry_loses_merged_mark(self):
        ours = SolverCache()
        key = ours.key([eq(byte("x"), 5)])
        ours.merge_delta((("m", key, (("x", 5),)),))
        assert ours.is_merged(key)
        ours.store_model(key, {"x": 5})
        assert not ours.is_merged(key)

    def test_merge_advances_generation_even_when_skipping(self):
        """Every replica must agree on sync points, so skipped events
        still count."""
        ours = SolverCache()
        key = ours.key([eq(byte("x"), 1)])
        ours.store_model(key, {"x": 1})
        before = ours.generation
        ours.merge_delta((("m", key, (("x", 1),)),))
        assert ours.generation == before + 1

    def test_merged_entries_are_not_rejournalled(self):
        ours = SolverCache()
        theirs = self.warm([5])
        ours.merge_delta(theirs.take_delta("n2").events)
        assert len(ours.take_delta("n1")) == 0

    def test_delta_is_compact_and_picklable(self):
        import pickle

        cache = self.warm(range(50))
        full = cache.full_pickle_size()
        delta_bytes = len(pickle.dumps(cache.take_delta("n1")))
        restored = pickle.loads(
            pickle.dumps(self.warm(range(50)).take_delta("n1"))
        )
        assert len(restored) == 50
        # zlib-packed events beat the raw full-state pickle even when
        # every entry is new (the worst case for a delta).
        assert delta_bytes < full

    def test_state_fingerprint_tracks_content(self):
        a = self.warm(range(3))
        b = self.warm(range(3))
        assert a.state_fingerprint() == b.state_fingerprint()
        c = self.warm(range(4))
        assert a.state_fingerprint() != c.state_fingerprint()
