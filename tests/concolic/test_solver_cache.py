"""Tests for the solver's constraint-system memoization cache.

The cache's soundness contract mirrors the solver's: every model it
hands back is re-verified against the *current* full constraint set, so
a stale or colliding entry can cost a miss but never a wrong answer.
"""

from repro.concolic.expr import BinOp, Const, Constraint, Var
from repro.concolic.solver import Solver, SolverCache


def byte(name):
    return Var(name, 0, 255)


def eq(var, value):
    return Constraint("eq", var, Const(value))


def system():
    """A small satisfiable decoder-style system."""
    a, b = byte("a"), byte("b")
    return [
        Constraint("eq", BinOp("or", BinOp("shl", a, Const(8)), b),
                   Const(0x1234)),
        Constraint("le", b, Const(0x80)),
    ]


class TestCacheHits:
    def test_second_identical_query_hits(self):
        solver = Solver(seed=1)
        first = solver.solve(system())
        assert first is not None
        second = solver.solve(system())
        assert second == first
        assert solver.stats.cache_hits == 1
        assert solver.stats.cache_misses == 1
        assert solver.stats.queries == 2
        assert solver.stats.sat == 2

    def test_key_is_order_insensitive(self):
        constraints = system()
        solver = Solver(seed=1)
        assert solver.solve(constraints) is not None
        assert solver.solve(list(reversed(constraints))) is not None
        assert solver.stats.cache_hits == 1

    def test_cached_model_verifies_against_full_constraint_set(self):
        """The satellite-task contract: a cache hit is re-verified.

        Poison the cache with a model that does NOT satisfy the system;
        the solver must fall through to a real solve and return a model
        that satisfies every constraint.
        """
        constraints = system()
        cache = SolverCache()
        cache.store_model(cache.key(constraints), {"a": 0, "b": 0})
        solver = Solver(seed=1, cache=cache)
        model = solver.solve(constraints)
        assert model is not None
        assert all(constraint.holds(model) for constraint in constraints)
        assert solver.stats.cache_hits == 0

    def test_cached_model_missing_variable_is_a_miss(self):
        constraints = [eq(byte("x"), 7)]
        cache = SolverCache()
        cache.store_model(cache.key(constraints), {"y": 7})
        solver = Solver(seed=1, cache=cache)
        assert solver.solve(constraints) == {"x": 7}

    def test_failure_cached_per_hint(self):
        unsat = [eq(byte("x"), 1), eq(byte("x"), 2)]
        solver = Solver(seed=1, max_repair_rounds=5, max_restarts=2)
        assert solver.solve(unsat, hint={"x": 1}) is None
        assert solver.solve(unsat, hint={"x": 1}) is None
        assert solver.stats.cache_hits == 1
        # A different hint is a genuinely different search; no hit.
        assert solver.solve(unsat, hint={"x": 2}) is None
        assert solver.stats.cache_hits == 1

    def test_failure_cached_per_budget(self):
        """A low-budget solver's failure must not suppress a bigger
        solver sharing the cache — its search might succeed."""
        unsat = [eq(byte("x"), 1), eq(byte("x"), 2)]
        cache = SolverCache()
        small = Solver(seed=1, max_repair_rounds=5, max_restarts=2,
                       cache=cache)
        assert small.solve(unsat, hint={"x": 1}) is None
        big = Solver(seed=1, cache=cache)
        assert big.solve(unsat, hint={"x": 1}) is None
        # The big solver searched for itself: miss, not a cached hit.
        assert big.stats.cache_hits == 0
        assert big.stats.cache_misses == 1

    def test_cache_shareable_across_solvers(self):
        cache = SolverCache()
        first = Solver(seed=1, cache=cache)
        model = first.solve(system())
        assert model is not None
        second = Solver(seed=99, cache=cache)
        assert second.solve(system()) == model
        assert second.stats.cache_hits == 1


class TestCacheControls:
    def test_disabled_cache_never_counts(self):
        solver = Solver(seed=1, enable_cache=False)
        assert solver.cache is None
        assert solver.solve(system()) is not None
        assert solver.solve(system()) is not None
        assert solver.stats.cache_hits == 0
        assert solver.stats.cache_misses == 0

    def test_eviction_bounds_entries(self):
        cache = SolverCache(max_entries=4)
        solver = Solver(seed=1, cache=cache)
        for value in range(10):
            assert solver.solve([eq(byte("x"), value)]) == {"x": value}
        assert cache.models_cached <= 4

    def test_hit_rate(self):
        solver = Solver(seed=1)
        assert solver.stats.cache_hit_rate() == 0.0
        solver.solve(system())
        solver.solve(system())
        assert solver.stats.cache_hit_rate() == 0.5
