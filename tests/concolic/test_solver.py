"""Tests for the constraint solver.

The soundness contract: any non-None model satisfies every constraint.
Completeness is best-effort, so tests assert success only on shapes the
solver is designed for (decoder-style constraints).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concolic.expr import BinOp, Const, Constraint, Var
from repro.concolic.solver import Solver, _concat_terms, _decompose_concat


def byte(name):
    return Var(name, 0, 255)


def u16(a, b):
    return BinOp("or", BinOp("shl", a, Const(8)), b)


def u32(b0, b1, b2, b3):
    return BinOp(
        "or",
        BinOp(
            "or",
            BinOp("shl", b0, Const(24)),
            BinOp("shl", b1, Const(16)),
        ),
        BinOp("or", BinOp("shl", b2, Const(8)), b3),
    )


class TestConcatRecognition:
    def test_u16_recognized(self):
        terms = _concat_terms(u16(byte("a"), byte("b")))
        assert [(v.name, s) for v, s in terms] == [("a", 8), ("b", 0)]

    def test_u32_recognized(self):
        terms = _concat_terms(u32(byte("a"), byte("b"), byte("c"), byte("d")))
        assert [s for _, s in terms] == [24, 16, 8, 0]

    def test_add_accepted(self):
        expr = BinOp("add", BinOp("shl", byte("a"), Const(8)), byte("b"))
        assert _concat_terms(expr) is not None

    def test_non_byte_shift_rejected(self):
        expr = BinOp("or", BinOp("shl", byte("a"), Const(7)), byte("b"))
        assert _concat_terms(expr) is None

    def test_duplicate_var_rejected(self):
        expr = u16(byte("a"), byte("a"))
        assert _concat_terms(expr) is None

    def test_decompose(self):
        terms = _concat_terms(u16(byte("a"), byte("b")))
        assert _decompose_concat(terms, 0xBEEF) == {"a": 0xBE, "b": 0xEF}

    def test_decompose_out_of_range(self):
        terms = _concat_terms(u16(byte("a"), byte("b")))
        assert _decompose_concat(terms, 0x10000) is None
        assert _decompose_concat(terms, -1) is None


def check_model(constraints, model):
    assert model is not None, "expected a model"
    for constraint in constraints:
        assert constraint.holds(model), f"{constraint} violated by {model}"


class TestBasicSolving:
    def test_single_equality(self):
        constraints = [Constraint("eq", byte("x"), Const(42))]
        check_model(constraints, Solver().solve(constraints))

    def test_inequality_chain(self):
        x = byte("x")
        constraints = [
            Constraint("gt", x, Const(10)),
            Constraint("lt", x, Const(13)),
            Constraint("ne", x, Const(12)),
        ]
        model = Solver().solve(constraints)
        check_model(constraints, model)
        assert model["x"] == 11

    def test_unsat_by_interval(self):
        constraints = [Constraint("gt", byte("x"), Const(300))]
        solver = Solver()
        assert solver.solve(constraints) is None
        assert solver.stats.interval_rejections == 1

    def test_contradiction_returns_none(self):
        x = byte("x")
        constraints = [
            Constraint("eq", x, Const(1)),
            Constraint("eq", x, Const(2)),
        ]
        assert Solver().solve(constraints) is None

    def test_hint_respected_when_consistent(self):
        x = byte("x")
        constraints = [Constraint("gt", x, Const(10))]
        model = Solver().solve(constraints, hint={"x": 200})
        check_model(constraints, model)
        assert model["x"] == 200

    def test_empty_constraints_trivially_sat(self):
        assert Solver().solve([]) == {}


class TestStructuredSolving:
    def test_u16_equality(self):
        constraints = [
            Constraint("eq", u16(byte("a"), byte("b")), Const(4096 + 7))
        ]
        model = Solver().solve(constraints)
        check_model(constraints, model)
        assert model == {"a": 16, "b": 7}

    def test_u32_equality(self):
        target = 0xDEADBEEF
        constraints = [
            Constraint(
                "eq",
                u32(byte("a"), byte("b"), byte("c"), byte("d")),
                Const(target),
            )
        ]
        check_model(constraints, Solver().solve(constraints))

    def test_u16_range(self):
        expr = u16(byte("a"), byte("b"))
        constraints = [
            Constraint("ge", expr, Const(1000)),
            Constraint("le", expr, Const(1001)),
        ]
        check_model(constraints, Solver().solve(constraints))

    def test_masked_equality(self):
        constraints = [
            Constraint(
                "eq", BinOp("and", byte("f"), Const(0x10)), Const(0x10)
            )
        ]
        check_model(constraints, Solver().solve(constraints))

    def test_mask_impossible(self):
        # (f & 0x0F) == 0x10 can never hold.
        constraints = [
            Constraint("eq", BinOp("and", byte("f"), Const(0x0F)), Const(0x10))
        ]
        assert Solver().solve(constraints) is None

    def test_affine_inversion(self):
        expr = BinOp("add", BinOp("mul", byte("x"), Const(3)), Const(5))
        constraints = [Constraint("eq", expr, Const(3 * 7 + 5))]
        model = Solver().solve(constraints)
        check_model(constraints, model)
        assert model["x"] == 7

    def test_shift_inversion(self):
        constraints = [
            Constraint("eq", BinOp("shl", byte("x"), Const(4)), Const(0x50))
        ]
        model = Solver().solve(constraints)
        check_model(constraints, model)
        assert model["x"] == 5

    def test_xor_inversion(self):
        constraints = [
            Constraint("eq", BinOp("xor", byte("x"), Const(0xFF)), Const(0xF0))
        ]
        model = Solver().solve(constraints)
        check_model(constraints, model)
        assert model["x"] == 0x0F

    def test_multi_constraint_path_condition(self):
        """A realistic decoder path: type byte, length field, value range."""
        msg_type = byte("t")
        len_hi, len_lo = byte("lh"), byte("ll")
        value = byte("v")
        constraints = [
            Constraint("eq", msg_type, Const(2)),
            Constraint("eq", u16(len_hi, len_lo), Const(37)),
            Constraint("le", value, Const(32)),
            Constraint("gt", value, Const(24)),
        ]
        check_model(constraints, Solver().solve(constraints))

    def test_variables_across_constraints(self):
        x, y = byte("x"), byte("y")
        constraints = [
            Constraint("eq", BinOp("add", x, y), Const(100)),
            Constraint("gt", x, Const(90)),
        ]
        check_model(constraints, Solver().solve(constraints))


class TestSoundnessProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
                st.sampled_from(["x", "y", "z"]),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=6,
        ),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_models_always_verified(self, specs, seed):
        """Whatever the solver returns, it satisfies all constraints."""
        constraints = [
            Constraint(op, byte(name), Const(value))
            for op, name, value in specs
        ]
        model = Solver(seed=seed).solve(constraints)
        if model is not None:
            for constraint in constraints:
                assert constraint.holds(model)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_u16_targets_always_solved(self, target, seed):
        constraints = [
            Constraint("eq", u16(byte("a"), byte("b")), Const(target))
        ]
        model = Solver(seed=seed).solve(constraints)
        check_model(constraints, model)


class TestStats:
    def test_counters_advance(self):
        solver = Solver()
        solver.solve([Constraint("eq", byte("x"), Const(1))])
        solver.solve([Constraint("gt", byte("x"), Const(999))])
        assert solver.stats.queries == 2
        assert solver.stats.sat == 1
        assert solver.stats.unknown == 1
