"""Tests for the expression/constraint AST."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.concolic.expr import (
    BinOp,
    Const,
    Constraint,
    UnOp,
    Var,
    make_binop,
    make_unop,
)


class TestVar:
    def test_domain_validated(self):
        with pytest.raises(ValueError):
            Var("x", 10, 5)

    def test_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_evaluate(self):
        assert Var("x").evaluate({"x": 7}) == 7


class TestConstantFolding:
    def test_const_const_folds(self):
        assert make_binop("add", Const(2), Const(3)) == Const(5)

    def test_add_zero_identity(self):
        x = Var("x")
        assert make_binop("add", x, Const(0)) is x
        assert make_binop("add", Const(0), x) is x

    def test_mul_zero_annihilates(self):
        assert make_binop("mul", Var("x"), Const(0)) == Const(0)

    def test_mul_one_identity(self):
        x = Var("x")
        assert make_binop("mul", x, Const(1)) is x

    def test_shift_zero_identity(self):
        x = Var("x")
        assert make_binop("shl", x, Const(0)) is x

    def test_and_zero(self):
        assert make_binop("and", Var("x"), Const(0)) == Const(0)

    def test_double_negation_cancels(self):
        x = Var("x")
        assert make_unop("neg", make_unop("neg", x)) is x

    def test_unop_const_folds(self):
        assert make_unop("neg", Const(5)) == Const(-5)
        assert make_unop("not", Const(0)) == Const(-1)


class TestEvaluation:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_binops_match_python(self, a, b):
        assignment = {"a": a, "b": b}
        va, vb = Var("a"), Var("b")
        cases = {
            "add": a + b, "sub": a - b, "mul": a * b,
            "and": a & b, "or": a | b, "xor": a ^ b,
        }
        for op, expected in cases.items():
            assert BinOp(op, va, vb).evaluate(assignment) == expected
        assert BinOp("shl", va, Const(3)).evaluate(assignment) == a << 3
        assert BinOp("shr", va, Const(2)).evaluate(assignment) == a >> 2

    def test_unop_evaluate(self):
        assert UnOp("neg", Var("x")).evaluate({"x": 4}) == -4
        assert UnOp("not", Var("x")).evaluate({"x": 4}) == ~4


class TestConstraint:
    def test_negation_pairs(self):
        c = Constraint("lt", Var("x"), Const(5))
        assert c.negated().op == "ge"
        assert c.negated().negated() == c

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Constraint("spaceship", Var("x"), Const(1))

    @given(st.integers(min_value=-10, max_value=10))
    def test_holds_matches_python(self, x):
        assignment = {"x": x}
        checks = {
            "eq": x == 3, "ne": x != 3, "lt": x < 3,
            "le": x <= 3, "gt": x > 3, "ge": x >= 3,
        }
        for op, expected in checks.items():
            constraint = Constraint(op, Var("x"), Const(3))
            assert constraint.holds(assignment) == expected

    @given(st.integers(min_value=-10, max_value=10))
    def test_negation_is_complement(self, x):
        constraint = Constraint("le", Var("x"), Const(0))
        assignment = {"x": x}
        assert constraint.holds(assignment) != constraint.negated().holds(
            assignment
        )

    def test_hash_equal_constraints(self):
        a = Constraint("eq", Var("x"), Const(1))
        b = Constraint("eq", Var("x"), Const(1))
        assert hash(a) == hash(b)
        assert a == b

    def test_commutative_hash(self):
        a = BinOp("add", Var("x"), Var("y"))
        b = BinOp("add", Var("y"), Var("x"))
        assert a == b
        assert hash(a) == hash(b)

    def test_variables_enumeration(self):
        constraint = Constraint(
            "eq",
            BinOp("add", Var("x"), Var("y")),
            Const(3),
        )
        names = {var.name for var in constraint.variables()}
        assert names == {"x", "y"}
