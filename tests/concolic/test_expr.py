"""Tests for the expression/constraint AST."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.concolic.expr import (
    BinOp,
    Const,
    Constraint,
    UnOp,
    Var,
    make_binop,
    make_unop,
)


class TestVar:
    def test_domain_validated(self):
        with pytest.raises(ValueError):
            Var("x", 10, 5)

    def test_equality_by_name(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")

    def test_evaluate(self):
        assert Var("x").evaluate({"x": 7}) == 7


class TestConstantFolding:
    def test_const_const_folds(self):
        assert make_binop("add", Const(2), Const(3)) == Const(5)

    def test_add_zero_identity(self):
        x = Var("x")
        assert make_binop("add", x, Const(0)) is x
        assert make_binop("add", Const(0), x) is x

    def test_mul_zero_annihilates(self):
        assert make_binop("mul", Var("x"), Const(0)) == Const(0)

    def test_mul_one_identity(self):
        x = Var("x")
        assert make_binop("mul", x, Const(1)) is x

    def test_shift_zero_identity(self):
        x = Var("x")
        assert make_binop("shl", x, Const(0)) is x

    def test_and_zero(self):
        assert make_binop("and", Var("x"), Const(0)) == Const(0)

    def test_double_negation_cancels(self):
        x = Var("x")
        assert make_unop("neg", make_unop("neg", x)) is x

    def test_unop_const_folds(self):
        assert make_unop("neg", Const(5)) == Const(-5)
        assert make_unop("not", Const(0)) == Const(-1)


class TestEvaluation:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_binops_match_python(self, a, b):
        assignment = {"a": a, "b": b}
        va, vb = Var("a"), Var("b")
        cases = {
            "add": a + b, "sub": a - b, "mul": a * b,
            "and": a & b, "or": a | b, "xor": a ^ b,
        }
        for op, expected in cases.items():
            assert BinOp(op, va, vb).evaluate(assignment) == expected
        assert BinOp("shl", va, Const(3)).evaluate(assignment) == a << 3
        assert BinOp("shr", va, Const(2)).evaluate(assignment) == a >> 2

    def test_unop_evaluate(self):
        assert UnOp("neg", Var("x")).evaluate({"x": 4}) == -4
        assert UnOp("not", Var("x")).evaluate({"x": 4}) == ~4


class TestConstraint:
    def test_negation_pairs(self):
        c = Constraint("lt", Var("x"), Const(5))
        assert c.negated().op == "ge"
        assert c.negated().negated() == c

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Constraint("spaceship", Var("x"), Const(1))

    @given(st.integers(min_value=-10, max_value=10))
    def test_holds_matches_python(self, x):
        assignment = {"x": x}
        checks = {
            "eq": x == 3, "ne": x != 3, "lt": x < 3,
            "le": x <= 3, "gt": x > 3, "ge": x >= 3,
        }
        for op, expected in checks.items():
            constraint = Constraint(op, Var("x"), Const(3))
            assert constraint.holds(assignment) == expected

    @given(st.integers(min_value=-10, max_value=10))
    def test_negation_is_complement(self, x):
        constraint = Constraint("le", Var("x"), Const(0))
        assignment = {"x": x}
        assert constraint.holds(assignment) != constraint.negated().holds(
            assignment
        )

    def test_hash_equal_constraints(self):
        a = Constraint("eq", Var("x"), Const(1))
        b = Constraint("eq", Var("x"), Const(1))
        assert hash(a) == hash(b)
        assert a == b

    def test_commutative_hash(self):
        a = BinOp("add", Var("x"), Var("y"))
        b = BinOp("add", Var("y"), Var("x"))
        assert a == b
        assert hash(a) == hash(b)

    def test_variables_enumeration(self):
        constraint = Constraint(
            "eq",
            BinOp("add", Var("x"), Var("y")),
            Const(3),
        )
        names = {var.name for var in constraint.variables()}
        assert names == {"x", "y"}


class TestFingerprints:
    """Structural fingerprints: process-stable solver-cache keys."""

    def test_identical_trees_fingerprint_equal(self):
        def tree():
            return Constraint(
                "eq",
                BinOp("or", BinOp("shl", Var("a"), Const(8)), Var("b")),
                Const(0x1234),
            )

        assert tree().fp == tree().fp

    def test_distinct_structures_fingerprint_differently(self):
        fps = {
            Var("x").fp,
            Var("y").fp,
            Var("x", 0, 7).fp,  # domain is part of the structure
            Const(5).fp,
            Const(-5).fp,
            UnOp("neg", Var("x")).fp,
            UnOp("not", Var("x")).fp,
            BinOp("add", Var("x"), Const(5)).fp,
            BinOp("sub", Var("x"), Const(5)).fp,
            Constraint("eq", Var("x"), Const(5)).fp,
            Constraint("ne", Var("x"), Const(5)).fp,
        }
        assert len(fps) == 11

    def test_order_sensitive_like_repr(self):
        """The fingerprint refines repr identity, not __eq__: commutative
        operand order matters, exactly as it did for repr-based keys."""
        ab = BinOp("add", Var("a"), Var("b"))
        ba = BinOp("add", Var("b"), Var("a"))
        assert ab == ba  # __eq__ is commutative-insensitive
        assert ab.fp != ba.fp

    def test_huge_constants_disambiguated(self):
        assert Const(1).fp != Const(1 + (1 << 64)).fp
        # Same bit length, same low 64 bits — only the high limb
        # differs; the failure cache trusts keys unverified, so Const
        # must feed its full magnitude into the fingerprint.
        assert Const(1 << 65).fp != Const(3 << 64).fp
        assert Const(5).fp != Const(-5).fp

    def test_huge_var_domains_disambiguated(self):
        """Var bounds take the same injective encoding as Const —
        64-bit masking would alias e.g. lo=-2 with lo=2**64-2."""
        assert Var("x", -2, 5).fp != Var("x", (1 << 64) - 2, (1 << 64) + 5).fp
        assert Var("x", -1, 5).fp != Var("x", 1, 5).fp

    def test_stable_across_processes(self):
        """No salted hash may leak in: recompute in a fresh interpreter."""
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        snippet = (
            "from repro.concolic.expr import BinOp, Const, Constraint, Var;"
            "print(Constraint('le', BinOp('and', Var('len'), Const(0x1F)),"
            " Const(32)).fp)"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            for _ in range(2)
        }
        local = Constraint(
            "le", BinOp("and", Var("len"), Const(0x1F)), Const(32)
        ).fp
        assert outputs == {str(local)}

    def test_fingerprint_is_64_bit(self):
        fp = Constraint("eq", Var("x"), Const(1)).fp
        assert 0 <= fp < (1 << 64)
