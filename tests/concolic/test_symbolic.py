"""Tests for symbolic proxies and branch recording."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.concolic.expr import Const, Var
from repro.concolic.path import held_path
from repro.concolic.symbolic import (
    PathRecorder,
    SymBool,
    SymBytes,
    SymInt,
    concrete,
)


def sym(value, name="x"):
    return SymInt(Var(name, 0, 255), value)


class TestSymIntArithmetic:
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_concrete_tracks_python(self, a, b):
        x = sym(a)
        assert (x + b).concrete == a + b
        assert (x - b).concrete == a - b
        assert (x * b).concrete == a * b
        assert (x & b).concrete == a & b
        assert (x | b).concrete == a | b
        assert (x ^ b).concrete == a ^ b
        assert (x << 2).concrete == a << 2
        assert (x >> 1).concrete == a >> 1
        assert (-x).concrete == -a
        assert (~x).concrete == ~a

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    def test_reflected_ops(self, a, b):
        x = sym(a)
        assert (b + x).concrete == b + a
        assert (b - x).concrete == b - a
        assert (b & x).concrete == b & a
        assert (b | x).concrete == b | a

    def test_sym_sym_ops(self):
        x, y = sym(3, "x"), sym(5, "y")
        total = x + y
        assert total.concrete == 8
        names = {var.name for var in total.expr.variables()}
        assert names == {"x", "y"}

    def test_floordiv_power_of_two_stays_symbolic(self):
        x = sym(12)
        result = x // 4
        assert isinstance(result, SymInt)
        assert result.concrete == 3

    def test_floordiv_non_exact_concretizes(self):
        assert sym(13) // 4 == 3  # plain int

    def test_mod_power_of_two_stays_symbolic(self):
        result = sym(13) % 4
        assert isinstance(result, SymInt)
        assert result.concrete == 1

    def test_int_index_hash(self):
        x = sym(7)
        assert int(x) == 7
        assert [10, 20, 30, 40, 50, 60, 70, 80][x] == 80
        assert hash(x) == hash(7)

    def test_format(self):
        assert f"{sym(255):02x}" == "ff"

    def test_incompatible_operand(self):
        with pytest.raises(TypeError):
            sym(1) + "text"


class TestBranchRecording:
    def test_no_recorder_no_crash(self):
        assert bool(sym(3) > 1) is True

    def test_comparison_records_on_bool(self):
        with PathRecorder() as recorder:
            if sym(5) > 3:
                pass
        assert len(recorder.branches) == 1
        constraint, taken = recorder.branches[0]
        assert constraint.op == "gt"
        assert taken is True

    def test_false_branch_recorded(self):
        with PathRecorder() as recorder:
            if sym(1) > 3:
                raise AssertionError("unreachable")
        constraint, taken = recorder.branches[0]
        assert taken is False

    def test_comparison_without_bool_not_recorded(self):
        with PathRecorder() as recorder:
            _ = sym(5) > 3  # never forced
        assert recorder.branches == []

    def test_truthiness_records_ne_zero(self):
        with PathRecorder() as recorder:
            if sym(0):
                raise AssertionError("unreachable")
        constraint, taken = recorder.branches[0]
        assert constraint.op == "ne"
        assert taken is False

    def test_chained_conditions_record_all_forced(self):
        with PathRecorder() as recorder:
            x = sym(10)
            if x > 5 and x < 20:
                pass
        assert len(recorder.branches) == 2

    def test_short_circuit_skips_second(self):
        with PathRecorder() as recorder:
            x = sym(1)
            if x > 5 and x < 20:
                pass
        assert len(recorder.branches) == 1

    def test_held_path_reconstruction(self):
        with PathRecorder() as recorder:
            x = sym(10)
            assert x > 5
            assert not (x > 50)
        held = held_path(recorder.branches)
        assert held[0].holds({"x": 10})
        assert held[1].holds({"x": 10})
        assert not held[1].holds({"x": 60})

    def test_nested_recorders_rejected(self):
        with PathRecorder():
            with pytest.raises(RuntimeError):
                with PathRecorder():
                    pass

    def test_max_branches_truncates(self):
        with PathRecorder(max_branches=3) as recorder:
            x = sym(1)
            for _ in range(10):
                bool(x > 0)
        assert len(recorder.branches) == 3
        assert recorder.truncated

    def test_signature_differs_per_path(self):
        def run(value):
            with PathRecorder() as recorder:
                if sym(value) > 5:
                    pass
            return recorder.path_signature()

        assert run(10) != run(1)
        assert run(10) == run(20)


class TestSymBool:
    def test_bool_returns_concrete(self):
        from repro.concolic.expr import Constraint

        constraint = Constraint("eq", Var("x"), Const(1))
        assert bool(SymBool(constraint, True)) is True
        assert bool(SymBool(constraint, False)) is False


class TestSymBytes:
    def test_unmarked_index_plain_int(self):
        data = SymBytes(b"\x01\x02", {})
        assert data[0] == 1
        assert isinstance(data[0], int)

    def test_marked_index_symint(self):
        data = SymBytes.mark_offsets(b"\x01\x02", [1])
        assert isinstance(data[1], SymInt)
        assert data[1].concrete == 2
        assert isinstance(data[0], int)

    def test_mark_all(self):
        data = SymBytes.mark_all(b"abc")
        assert all(isinstance(data[i], SymInt) for i in range(3))

    def test_negative_index(self):
        data = SymBytes.mark_all(b"abc")
        assert data[-1].concrete == ord("c")

    def test_slice_preserves_marks(self):
        data = SymBytes.mark_offsets(b"\x00\x01\x02\x03", [2])
        view = data[1:4]
        assert isinstance(view[1], SymInt)  # original offset 2
        assert isinstance(view[0], int)

    def test_stepped_slice_rejected(self):
        with pytest.raises(ValueError):
            SymBytes(b"abcd")[::2]

    def test_mark_outside_buffer_rejected(self):
        with pytest.raises(ValueError):
            SymBytes(b"ab", {5: Var("x")})

    def test_with_values(self):
        data = SymBytes.mark_offsets(b"\x00\x00\x00", [0, 2], prefix="b")
        variables = data.variables()
        updated = data.with_values({variables[0].name: 0xAA})
        assert updated.concrete == b"\xaa\x00\x00"
        # Marks carry over.
        assert isinstance(updated[0], SymInt)

    def test_iteration(self):
        data = SymBytes.mark_offsets(b"\x01\x02", [0])
        items = list(data)
        assert isinstance(items[0], SymInt)
        assert items[1] == 2

    def test_len(self):
        assert len(SymBytes.mark_all(b"abcd")) == 4


class TestConcretize:
    def test_unwraps_nested(self):
        value = {
            "a": sym(1),
            "b": [sym(2), 3],
            "c": (sym(4),),
            "d": SymBytes.mark_all(b"x"),
        }
        plain = concrete(value)
        assert plain == {"a": 1, "b": [2, 3], "c": (4,), "d": b"x"}

    def test_passthrough(self):
        assert concrete("text") == "text"
        assert concrete(None) is None
