"""Frontier object semantics and the engine's frontier disciplines.

Two layers: :class:`~repro.concolic.frontier.Frontier` as plain data
(pop orders, lineage partitioning, round-robin splitting, the
deterministic first-writer-wins merge, picklability) and the
disciplines driven end-to-end through :class:`ConcolicEngine`.
"""

import pickle

import pytest

from repro.concolic.engine import ConcolicEngine, ExplorationSpec
from repro.concolic.frontier import (
    Frontier,
    FrontierDiscipline,
    FrontierEntry,
    plan_round,
    resolve_discipline,
    seed_key,
)
from repro.concolic.symbolic import SymBytes


def entry(key, *, lineage=0, novel=True, novelty_key=None, bound=0):
    return FrontierEntry(
        input=SymBytes(b"\x00", {}), bound=bound, novel=novel,
        lineage=lineage, key=key, novelty_key=novelty_key,
    )


def frontier_with(keys, discipline=FrontierDiscipline.BFS, **entry_kwargs):
    frontier = Frontier(discipline=resolve_discipline(discipline))
    for key in keys:
        frontier.push(entry(key, **entry_kwargs))
    return frontier


class TestDisciplineResolution:
    def test_enum_members_pass_through(self):
        for member in FrontierDiscipline:
            assert resolve_discipline(member) is member

    def test_legacy_strings_resolve(self):
        assert resolve_discipline("bfs") is FrontierDiscipline.BFS
        assert resolve_discipline("sharded") is FrontierDiscipline.SHARDED

    def test_unknown_value_rejected(self):
        with pytest.raises(ValueError, match="spiral"):
            resolve_discipline("spiral")

    def test_str_is_the_wire_value(self):
        assert str(FrontierDiscipline.COVERAGE) == "coverage"

    def test_within_shard_order(self):
        assert (FrontierDiscipline.SHARDED.within_shard
                is FrontierDiscipline.BFS)
        assert (FrontierDiscipline.DFS.within_shard
                is FrontierDiscipline.DFS)


class TestPopOrder:
    def test_bfs_is_fifo(self):
        frontier = frontier_with([1, 2, 3], FrontierDiscipline.BFS)
        assert [frontier.pop().key for _ in range(3)] == [1, 2, 3]

    def test_dfs_is_lifo(self):
        frontier = frontier_with([1, 2, 3], FrontierDiscipline.DFS)
        assert [frontier.pop().key for _ in range(3)] == [3, 2, 1]

    def test_sharded_pops_bfs_within_a_shard(self):
        frontier = frontier_with([1, 2, 3], FrontierDiscipline.SHARDED)
        assert [frontier.pop().key for _ in range(3)] == [1, 2, 3]

    def test_coverage_serves_novel_entries_first(self):
        frontier = Frontier(discipline=FrontierDiscipline.COVERAGE)
        frontier.push(entry(1, novel=False))
        frontier.push(entry(2, novel=True))
        frontier.push(entry(3, novel=False))
        assert frontier.pop().key == 2

    def test_coverage_dead_novelty_degrades_to_fifo(self):
        """Once no queued flip promises an unseen constraint the
        discipline must fall back to oldest-first, explicitly — the
        historical behaviour silently depended on a generator
        default."""
        frontier = Frontier(discipline=FrontierDiscipline.COVERAGE)
        for key in (1, 2, 3):
            frontier.push(entry(key, novel=False))
        assert [frontier.pop().key for _ in range(3)] == [1, 2, 3]


class TestSeeding:
    def test_from_seeds_assigns_lineage_and_flip_keys(self):
        seeds = [SymBytes(b"\x00", {}), SymBytes(b"\x01", {})]
        frontier = Frontier.from_seeds(seeds, FrontierDiscipline.SHARDED)
        assert [e.lineage for e in frontier.entries] == [0, 1]
        assert frontier.seen_flips == {seed_key(0), seed_key(1)}
        assert all(e.novel for e in frontier.entries)

    def test_seed_keys_are_process_stable(self):
        # Plain values, no salted hash(): the same lineage must map to
        # the same key in any process.
        assert seed_key(0) == seed_key(0)
        assert seed_key(0) != seed_key(1)


class TestPartitionAndSplit:
    def test_partition_routes_by_lineage(self):
        frontier = Frontier(discipline=FrontierDiscipline.SHARDED)
        for lineage in range(6):
            frontier.push(entry(10 + lineage, lineage=lineage))
        shards = frontier.partition(2)
        assert [e.lineage for e in shards[0].entries] == [0, 2, 4]
        assert [e.lineage for e in shards[1].entries] == [1, 3, 5]

    def test_split_deals_round_robin_by_position(self):
        # All entries share one hot lineage; split must still spread
        # them — that is the whole point of the round barrier.
        frontier = frontier_with([1, 2, 3, 4, 5],
                                 FrontierDiscipline.SHARDED, lineage=7)
        shards = frontier.split(2)
        assert [e.key for e in shards[0].entries] == [1, 3, 5]
        assert [e.key for e in shards[1].entries] == [2, 4]

    def test_shards_get_private_dedup_sets(self):
        frontier = frontier_with([1], FrontierDiscipline.SHARDED)
        frontier.seen_paths.add(99)
        shards = frontier.split(2)
        shards[0].seen_paths.add(100)
        assert 100 not in frontier.seen_paths
        assert 100 not in shards[1].seen_paths
        assert 99 in shards[1].seen_paths


class TestMerge:
    def test_inherited_leftovers_all_survive(self):
        """Regression: every shard inherits the parent's full flip set,
        its siblings' queued entry keys included.  A merge that dedups
        against ``seen_flips`` would silently drop every un-run
        leftover held by shards after the first."""
        parent = frontier_with([1, 2], FrontierDiscipline.SHARDED)
        parent.seen_flips |= {1, 2}
        first, second = parent.split(2)
        ran = first.pop()  # shard 0 executes its entry...
        assert ran.key == 1
        first.push(entry(10))  # ...and solves one child flip.
        first.seen_flips.add(10)
        merged = Frontier.merge([first, second])
        # Shard 1 never ran its entry (key 2); it must survive even
        # though shard 0's inherited seen_flips contains key 2.
        assert [e.key for e in merged.entries] == [10, 2]

    def test_duplicate_pushes_keep_the_earlier_shard_copy(self):
        first = frontier_with([], FrontierDiscipline.SHARDED)
        second = frontier_with([], FrontierDiscipline.SHARDED)
        first.push(entry(7, bound=1))
        second.push(entry(7, bound=2))
        second.push(entry(8))
        merged = Frontier.merge([first, second])
        assert [(e.key, e.bound) for e in merged.entries] == [(7, 1), (8, 0)]

    def test_merge_unions_dedup_state(self):
        first = frontier_with([], FrontierDiscipline.SHARDED)
        second = frontier_with([], FrontierDiscipline.SHARDED)
        first.seen_paths.add(1)
        second.seen_paths.add(2)
        first.seen_constraints.add(3)
        second.seen_shapes.add(4)
        merged = Frontier.merge([first, second])
        assert merged.seen_paths == {1, 2}
        assert merged.seen_constraints == {3}
        assert merged.seen_shapes == {4}

    def test_merge_refreshes_stale_novelty(self):
        """Shard A queues a flip promising constraint 42; shard B saw
        constraint 42 this round.  After the merge the entry must not
        still claim novelty."""
        first = frontier_with([], FrontierDiscipline.SHARDED)
        first.push(entry(7, novel=True, novelty_key=42))
        second = frontier_with([], FrontierDiscipline.SHARDED)
        second.seen_constraints.add(42)
        merged = Frontier.merge([first, second])
        assert merged.entries[0].novel is False

    def test_root_seeds_stay_novel_through_merge(self):
        first = frontier_with([], FrontierDiscipline.SHARDED)
        first.push(entry(seed_key(0), novel=True, novelty_key=None))
        merged = Frontier.merge([first])
        assert merged.entries[0].novel is True


class TestPickling:
    def test_frontier_round_trips(self):
        frontier = Frontier.from_seeds(
            [SymBytes(b"\x05\x06", {})], FrontierDiscipline.SHARDED
        )
        frontier.seen_paths.add(11)
        frontier.seen_constraints.add(12)
        loaded = pickle.loads(pickle.dumps(frontier))
        assert loaded.discipline is FrontierDiscipline.SHARDED
        assert [e.key for e in loaded.entries] == [seed_key(0)]
        assert bytes(loaded.entries[0].input) == b"\x05\x06"
        assert loaded.seen_paths == frontier.seen_paths
        assert loaded.seen_constraints == frontier.seen_constraints


class TestPlanRound:
    def test_done_when_no_entries_or_no_budget(self):
        assert plan_round(0, 10, 4) is None
        assert plan_round(5, 0, 4) is None

    def test_never_plans_more_shards_than_entries(self):
        plan = plan_round(2, 10, 4)
        assert plan.count == 2
        assert plan.budgets == (5, 5)

    def test_never_plans_more_shards_than_budget(self):
        plan = plan_round(10, 3, 8)
        assert plan.count == 3
        assert plan.budgets == (1, 1, 1)

    def test_budgets_are_near_equal_and_sum_to_the_budget(self):
        plan = plan_round(10, 11, 4)
        assert plan.count == 4
        assert plan.budgets == (3, 3, 3, 2)
        assert sum(plan.budgets) == 11
        assert min(plan.budgets) >= 1


# -- disciplines through the engine -------------------------------------------


def deep_program(sym):
    """A chain of equality gates: depth rewards depth-first search."""
    depth = 0
    for index in range(6):
        if sym[index] == index + 1:
            depth += 1
        else:
            break
    if depth == 6:
        raise ValueError("bottom of the chain")
    return depth


def engine_for(frontier, max_executions, **spec_kwargs):
    return ConcolicEngine(
        deep_program,
        spec=ExplorationSpec(
            frontier=frontier, max_executions=max_executions, **spec_kwargs
        ),
    )


class TestDisciplines:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError, match="spiral"):
            ExplorationSpec(frontier="spiral")

    @pytest.mark.parametrize(
        "frontier", ["bfs", "dfs", "coverage", "sharded"]
    )
    def test_all_disciplines_reach_the_bottom(self, frontier):
        engine = engine_for(frontier, max_executions=60)
        result = engine.explore([SymBytes.mark_all(b"\x00" * 6)])
        assert result.crashes, f"{frontier} missed the deep crash"

    @pytest.mark.parametrize(
        "frontier", ["bfs", "dfs", "coverage", "sharded"]
    )
    def test_path_accounting_consistent(self, frontier):
        engine = engine_for(frontier, max_executions=40)
        result = engine.explore([SymBytes.mark_all(b"\x00" * 6)])
        assert result.unique_paths <= result.executions
        assert result.branch_coverage > 0

    def test_dfs_reaches_depth_in_fewer_executions(self):
        """On a depth-gated program DFS needs no more runs than BFS."""

        def crash_execution_index(frontier):
            engine = engine_for(
                frontier, max_executions=120, stop_on_first_crash=True
            )
            result = engine.explore([SymBytes.mark_all(b"\x00" * 6)])
            assert result.crashes
            return result.executions

        assert crash_execution_index("dfs") <= crash_execution_index("bfs")
