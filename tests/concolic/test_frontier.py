"""Tests for the engine's frontier disciplines (BFS/DFS/coverage)."""

import pytest

from repro.concolic.engine import ConcolicEngine
from repro.concolic.symbolic import SymBytes


def deep_program(sym):
    """A chain of equality gates: depth rewards depth-first search."""
    depth = 0
    for index in range(6):
        if sym[index] == index + 1:
            depth += 1
        else:
            break
    if depth == 6:
        raise ValueError("bottom of the chain")
    return depth


class TestDisciplines:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            ConcolicEngine(deep_program, frontier="spiral")

    @pytest.mark.parametrize("frontier", ["bfs", "dfs", "coverage"])
    def test_all_disciplines_reach_the_bottom(self, frontier):
        engine = ConcolicEngine(
            deep_program, max_executions=60, frontier=frontier
        )
        result = engine.explore([SymBytes.mark_all(b"\x00" * 6)])
        assert result.crashes, f"{frontier} missed the deep crash"

    @pytest.mark.parametrize("frontier", ["bfs", "dfs", "coverage"])
    def test_path_accounting_consistent(self, frontier):
        engine = ConcolicEngine(
            deep_program, max_executions=40, frontier=frontier
        )
        result = engine.explore([SymBytes.mark_all(b"\x00" * 6)])
        assert result.unique_paths <= result.executions
        assert result.branch_coverage > 0

    def test_dfs_reaches_depth_in_fewer_executions(self):
        """On a depth-gated program DFS needs no more runs than BFS."""

        def crash_execution_index(frontier):
            engine = ConcolicEngine(
                deep_program, max_executions=120, frontier=frontier,
                stop_on_first_crash=True,
            )
            result = engine.explore([SymBytes.mark_all(b"\x00" * 6)])
            assert result.crashes
            return result.executions

        assert crash_execution_index("dfs") <= crash_execution_index("bfs")
