"""Tests for the grammar-based UPDATE generator."""

import random

from repro.bgp.ip import Prefix
from repro.bgp.messages import UpdateMessage, decode_message
from repro.concolic.grammar import UpdateGrammar


def grammar(seed=0, **kwargs):
    return UpdateGrammar(rng=random.Random(seed), **kwargs)


class TestValidity:
    def test_all_generated_messages_decode(self):
        """Valid-by-construction: every output parses as an UPDATE."""
        gen = grammar(seed=1)
        for generated in gen.generate_many(100):
            message = decode_message(generated.data)
            assert isinstance(message, UpdateMessage)

    def test_announcements_have_mandatory_attributes(self):
        gen = grammar(seed=2)
        for generated in gen.generate_many(50):
            message = decode_message(generated.data)
            if message.nlri:
                assert message.attributes is not None
                assert message.attributes.next_hop is not None
                assert message.attributes.as_path.length() >= 1

    def test_size_bounds_respected(self):
        gen = grammar(seed=3, max_nlri=1, max_withdrawn=1, max_path_length=2)
        for generated in gen.generate_many(50):
            message = decode_message(generated.data)
            assert len(message.nlri) <= 1
            assert len(message.withdrawn) <= 1
            # Small-input mitigation: whole message stays compact.
            assert len(generated.data) < 200


class TestMarks:
    def test_marks_within_buffer(self):
        gen = grammar(seed=4)
        for generated in gen.generate_many(30):
            assert all(
                0 <= offset < len(generated.data)
                for offset in generated.marked_offsets
            )

    def test_header_never_marked(self):
        """The envelope (marker, length, type) stays concrete."""
        gen = grammar(seed=5)
        for generated in gen.generate_many(30):
            assert all(offset >= 19 for offset in generated.marked_offsets)

    def test_symbolic_wrapper(self):
        generated = grammar(seed=6).generate()
        sym = generated.symbolic()
        assert len(sym) == len(generated.data)
        assert len(sym.variables()) == len(set(generated.marked_offsets))

    def test_structure_marking_toggle(self):
        with_structure = grammar(seed=7, mark_structure=True).generate()
        gen = grammar(seed=7, mark_structure=False)
        without_structure = gen.generate()
        assert len(with_structure.marked_offsets) > len(
            without_structure.marked_offsets
        )


class TestDeterminism:
    def test_same_seed_same_messages(self):
        a = [g.data for g in grammar(seed=8).generate_many(10)]
        b = [g.data for g in grammar(seed=8).generate_many(10)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [g.data for g in grammar(seed=8).generate_many(10)]
        b = [g.data for g in grammar(seed=9).generate_many(10)]
        assert a != b


class TestRouterSeeding:
    def test_pools_from_live_router(self, converged3):
        router = converged3.router("r2")
        gen = UpdateGrammar.for_router(router, random.Random(0))
        assert Prefix("10.1.0.0/16") in gen.prefix_pool
        assert 65001 in gen.asn_pool
        assert 65002 in gen.asn_pool
        generated = gen.generate()
        message = decode_message(generated.data)
        assert isinstance(message, UpdateMessage)

    def test_empty_router_gets_defaults(self):
        from repro.bgp.config import RouterConfig
        from repro.bgp.ip import IPv4Address
        from repro.bgp.router import BGPRouter

        router = BGPRouter(
            RouterConfig(
                name="lonely", local_as=65009,
                router_id=IPv4Address("9.9.9.9"),
            )
        )
        gen = UpdateGrammar.for_router(router, random.Random(0))
        assert gen.prefix_pool  # fell back to defaults
        decode_message(gen.generate().data)
