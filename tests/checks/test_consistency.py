"""Tests for the commitment-based export-consistency check."""

from repro.checks.consistency import (
    ExportConsistency,
    attach_consistency_checks,
    wire_stable_view,
)
from repro.checks.hijack import build_sharing_endpoints
from repro.core.properties import CheckContext
from repro.core.sharing import SharingRegistry
from repro.util.hashing import salted_digest


def make_context(live, node="r2"):
    registry = SharingRegistry.from_configs(live.initial_configs)
    build_sharing_endpoints(live.network, registry)
    attach_consistency_checks(live.network, registry)
    return CheckContext(clone=live.network, node=node, sharing=registry)


class TestWireStableView:
    def test_view_contains_path_and_origin(self, converged3):
        route = converged3.router("r2").loc_rib.get(
            next(iter(converged3.router("r2").adj_rib_in["r1"].prefixes()))
        )
        view = wire_stable_view(route.prefix, route.attributes)
        assert view[0] == str(route.prefix)
        assert view[2] == int(route.attributes.origin)

    def test_view_ignores_local_pref(self, converged3):
        rib = converged3.router("r2").adj_rib_in["r1"]
        route = next(rib.routes())
        tweaked = route.attributes.replace(local_pref=999, med=7)
        assert wire_stable_view(route.prefix, route.attributes) == (
            wire_stable_view(route.prefix, tweaked)
        )


class TestExportConsistency:
    def test_healthy_system_agrees(self, converged3):
        context = make_context(converged3)
        assert ExportConsistency().check(context) == []

    def test_all_nodes_agree(self, converged3):
        for node in ("r1", "r2", "r3"):
            context = make_context(converged3, node=node)
            assert ExportConsistency().check(context) == []

    def test_tampered_route_detected(self, converged3):
        """Corrupt the receive-side AS path: commitments must diverge."""
        from repro.bgp.attributes import AsPath

        r2 = converged3.router("r2")
        rib = r2.adj_rib_in["r1"]
        route = next(rib.routes())
        forged = route.with_attributes(
            route.attributes.replace(
                as_path=AsPath.from_sequence(64999, 64998)
            )
        )
        rib.update(forged)
        context = make_context(converged3)
        violations = ExportConsistency().check(context)
        assert violations
        assert violations[0].fault_class == "programming_error"
        assert violations[0].evidence["peer"] == "r1"

    def test_send_side_amnesia_detected(self, converged3):
        """Sender forgetting its advertisement also mismatches."""
        r1 = converged3.router("r1")
        r1.adj_rib_out["r2"].clear()
        context = make_context(converged3)
        violations = ExportConsistency().check(context)
        prefixes = {v.evidence["prefix"] for v in violations}
        assert "10.1.0.0/16" in prefixes

    def test_commitments_never_reveal_values(self, converged3):
        """Responses crossing the interface are 32-byte digests only."""
        context = make_context(converged3)
        ExportConsistency().check(context)
        for endpoint in context.sharing.endpoints():
            for entry in endpoint.audit_log:
                if entry.check == "export_commitment":
                    assert entry.response_type == "bytes"

    def test_fresh_salt_changes_commitment(self, converged3):
        r2 = converged3.router("r2")
        route = next(r2.adj_rib_in["r1"].routes())
        view = wire_stable_view(route.prefix, route.attributes)
        assert salted_digest(view, b"salt-a") != salted_digest(view, b"salt-b")

    def test_skips_domains_without_commitment_check(self, converged3):
        registry = SharingRegistry.from_configs(converged3.initial_configs)
        build_sharing_endpoints(converged3.network, registry)
        # No attach_consistency_checks: the property must skip quietly.
        context = CheckContext(
            clone=converged3.network, node="r2", sharing=registry
        )
        assert ExportConsistency().check(context) == []
