"""Tests for the route-stability (policy conflict) check."""

from repro.checks.oscillation import RouteStability
from repro.core.live import LiveSystem
from repro.core.properties import CheckContext
from repro.core.sharing import SharingRegistry
from repro.topo.gadgets import (
    GADGET_PREFIX,
    build_good_gadget,
    build_slow_convergence,
)


def make_context(live, node):
    return CheckContext(
        clone=live.network, node=node, sharing=SharingRegistry()
    )


class TestRouteStability:
    def test_converged_system_stable(self, converged3):
        prop = RouteStability()
        context = make_context(converged3, "r2")
        prop.prepare(context)
        converged3.run(until=converged3.network.sim.now + 10)
        assert prop.check(context) == []

    def test_bad_gadget_flagged(self, bad_gadget_live):
        bad_gadget_live.run(until=2)  # sessions up, oscillation starting
        prop = RouteStability()
        context = make_context(bad_gadget_live, "r1")
        prop.prepare(context)
        bad_gadget_live.run(until=bad_gadget_live.network.sim.now + 10)
        violations = prop.check(context)
        assert violations
        assert violations[0].fault_class == "policy_conflict"
        assert violations[0].evidence["prefix"] == str(GADGET_PREFIX)
        assert violations[0].evidence["transitions"] >= prop.max_transitions

    def test_good_gadget_not_flagged(self):
        configs, links = build_good_gadget()
        live = LiveSystem.build(configs, links, seed=7)
        live.run(until=2)
        prop = RouteStability()
        context = make_context(live, "r1")
        prop.prepare(context)
        live.run(until=live.network.sim.now + 10)
        assert prop.check(context) == []

    def test_baseline_excludes_convergence_churn(self, live3):
        """Changes before prepare() (initial convergence) don't count."""
        live3.converge()
        prop = RouteStability()
        context = make_context(live3, "r2")
        prop.prepare(context)
        assert prop.check(context) == []

    def test_watch_neighbors_toggle(self, bad_gadget_live):
        bad_gadget_live.run(until=2)
        prop = RouteStability(watch_neighbors=False)
        context = make_context(bad_gadget_live, "d")
        prop.prepare(context)
        bad_gadget_live.run(until=bad_gadget_live.network.sim.now + 10)
        # d originates the prefix and never flaps; with neighbors
        # unwatched, nothing is flagged at d.
        assert prop.check(context) == []

    def test_slow_convergence_not_misclassified(self):
        """Regression: many transitions ≠ oscillation.

        The slow-convergence gadget upgrades tail router t's best path
        once per relay — more transitions than max_transitions, but
        every change is monotone progress toward the final state. The
        revisit heuristic must keep this off the fault list: a policy
        conflict *revisits* states (DPC's cycle of ⊁-related states),
        legitimate convergence never does.
        """
        configs, links = build_slow_convergence(stages=12)
        live = LiveSystem.build(configs, links, seed=9)
        live.run(until=2)  # sessions coming up; upgrades still ahead
        prop = RouteStability(max_transitions=8)
        context = make_context(live, "t")
        prop.prepare(context)
        live.converge(deadline=600)
        router = live.router("t")
        transitions = sum(
            1 for change in router.loc_rib.recent_changes(256)
            if change.prefix == GADGET_PREFIX
        )
        assert transitions > prop.max_transitions, (
            "gadget must out-churn the threshold for the test to bite"
        )
        assert prop.check(context) == []

    def test_revisits_still_flagged_above_threshold(self, bad_gadget_live):
        """The tightened heuristic must not weaken real detection: the
        BAD GADGET cycles through previously-held states."""
        bad_gadget_live.run(until=2)
        prop = RouteStability()
        context = make_context(bad_gadget_live, "r1")
        prop.prepare(context)
        bad_gadget_live.run(until=bad_gadget_live.network.sim.now + 10)
        violations = prop.check(context)
        assert violations
        assert violations[0].evidence["revisits"] >= prop.min_revisits

    def test_threshold_configurable(self, converged3):
        from repro.bgp.config import AddNetwork, RemoveNetwork
        from repro.bgp.ip import Prefix

        prop = RouteStability(max_transitions=2)
        context = make_context(converged3, "r2")
        prop.prepare(context)
        prefix = Prefix("10.60.0.0/16")
        for _ in range(2):
            converged3.apply_change("r1", AddNetwork(prefix))
            converged3.converge()
            converged3.apply_change("r1", RemoveNetwork(prefix))
            converged3.converge()
        violations = prop.check(context)
        assert violations  # legitimate churn trips a too-low threshold
