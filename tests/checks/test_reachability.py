"""Tests for the oracle reachability checks."""

from repro.bgp.config import RemoveNetwork
from repro.bgp.ip import Prefix
from repro.checks.reachability import (
    convergence_complete,
    find_blackholes,
    find_forwarding_loops,
    forwarding_path,
)


class TestForwardingPath:
    def test_delivery_along_line(self, converged3):
        path, outcome = forwarding_path(
            converged3.network, "r3", Prefix("10.1.0.0/16")
        )
        assert outcome == "delivered"
        assert path == ["r3", "r2", "r1"]

    def test_originator_delivers_immediately(self, converged3):
        path, outcome = forwarding_path(
            converged3.network, "r1", Prefix("10.1.0.0/16")
        )
        assert outcome == "delivered"
        assert path == ["r1"]

    def test_blackhole_when_no_route(self, converged3):
        path, outcome = forwarding_path(
            converged3.network, "r3", Prefix("203.0.113.0/24")
        )
        assert outcome == "blackhole"


class TestGlobalChecks:
    def test_converged_system_clean(self, converged3):
        assert find_forwarding_loops(converged3.network) == []
        assert find_blackholes(converged3.network) == []
        assert convergence_complete(converged3.network)

    def test_blackhole_after_partial_withdrawal(self, converged3):
        """Withdraw at origin but keep checking the old universe."""
        converged3.apply_change("r1", RemoveNetwork(Prefix("10.1.0.0/16")))
        converged3.converge()
        holes = find_blackholes(
            converged3.network, [Prefix("10.1.0.0/16")]
        )
        assert ("r2", Prefix("10.1.0.0/16")) in holes
        assert ("r3", Prefix("10.1.0.0/16")) in holes

    def test_prefix_universe_from_configs(self, converged3):
        assert not find_blackholes(converged3.network)
        converged3.apply_change("r1", RemoveNetwork(Prefix("10.1.0.0/16")))
        converged3.converge()
        # The universe now excludes the withdrawn prefix: still clean.
        assert not find_blackholes(converged3.network)

    def test_loop_detection_on_crafted_state(self, converged3):
        """Manufacture a two-node forwarding loop in Loc-RIBs."""
        import dataclasses

        r2 = converged3.router("r2")
        r3 = converged3.router("r3")
        prefix = Prefix("10.1.0.0/16")
        route_at_r2 = r2.loc_rib.get(prefix)
        looped_r2 = dataclasses.replace(route_at_r2, peer="r3")
        r2.loc_rib.set(0.0, prefix, looped_r2)
        route_at_r3 = r3.loc_rib.get(prefix)
        looped_r3 = dataclasses.replace(route_at_r3, peer="r2")
        r3.loc_rib.set(0.0, prefix, looped_r3)
        loops = find_forwarding_loops(converged3.network, [prefix])
        assert any(node == "r2" for node, _, _ in loops)
        assert any(node == "r3" for node, _, _ in loops)
