"""Tests for the federated origin-authenticity (hijack) check."""

from repro.bgp.config import AddNetwork
from repro.bgp.ip import Prefix
from repro.checks.hijack import OriginAuthenticity, build_sharing_endpoints
from repro.core.properties import CheckContext
from repro.core.sharing import SharingRegistry


def make_context(live, node="r2"):
    registry = SharingRegistry.from_configs(live.initial_configs)
    build_sharing_endpoints(live.network, registry)
    return CheckContext(
        clone=live.network, node=node, sharing=registry
    )



def evaluate(context):
    """Run the property's full lifecycle (prepare, then check)."""
    prop = OriginAuthenticity()
    prop.prepare(context)
    return prop.check(context)

class TestOriginAuthenticity:
    def test_clean_system_no_violation(self, converged3):
        context = make_context(converged3)
        assert evaluate(context) == []

    def test_hijacker_self_detected(self, converged3):
        """The hijacking node's own exploration flags its origination."""
        converged3.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        converged3.converge()
        context = make_context(converged3, node="r3")
        violations = evaluate(context)
        assert violations
        assert violations[0].fault_class == "operator_mistake"
        assert violations[0].evidence["origin_as"] == 65003
        assert 65001 in violations[0].evidence["owners"]

    def test_victim_side_detection(self, converged3):
        """A node that *selected* the hijacked route flags it too."""
        converged3.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        converged3.converge()
        # r2 now has two candidates for 10.1/16; whichever it selected,
        # if it selected r3's it must flag it.  Force selection of the
        # hijacked path by checking at a node beyond it.
        context = make_context(converged3, node="r2")
        route = converged3.router("r2").loc_rib.get(Prefix("10.1.0.0/16"))
        violations = evaluate(context)
        if route.origin_as == 65003:
            assert violations
        else:
            assert violations == []

    def test_more_specific_hijack_detected(self, converged3):
        """Announcing a more-specific inside someone's aggregate is the
        classic traffic-attraction hijack."""
        converged3.apply_change("r3", AddNetwork(Prefix("10.1.128.0/17")))
        converged3.converge()
        context = make_context(converged3, node="r3")
        violations = evaluate(context)
        assert violations
        assert violations[0].evidence["prefix"] == "10.1.128.0/17"

    def test_own_aggregate_more_specific_allowed(self, converged3):
        """The owner splitting its own aggregate is not a hijack."""
        converged3.apply_change("r1", AddNetwork(Prefix("10.1.128.0/17")))
        converged3.converge()
        context = make_context(converged3, node="r1")
        assert evaluate(context) == []

    def test_unclaimed_space_not_flagged(self, converged3):
        """Space nobody registered cannot be hijacked (no baseline)."""
        converged3.apply_change("r3", AddNetwork(Prefix("203.0.113.0/24")))
        converged3.converge()
        context = make_context(converged3, node="r3")
        assert evaluate(context) == []

    def test_owner_withdrawal_clears_alarm(self, converged3):
        """If the registered owner no longer originates the space and
        the registry is stale, the live cross-check suppresses the
        alarm only when the owner authorizes; mere withdrawal keeps the
        registry's word (conservative)."""
        from repro.bgp.config import RemoveNetwork

        converged3.apply_change("r1", RemoveNetwork(Prefix("10.1.0.0/16")))
        converged3.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        converged3.converge()
        context = make_context(converged3, node="r3")
        violations = evaluate(context)
        # Owner no longer claims origination -> cross-check cannot
        # confirm -> no alarm (the space was released).
        assert violations == []

    def test_uses_only_narrow_interface(self, converged3):
        """The check's remote interactions are exactly audited boolean
        queries — no rich data crosses domains."""
        converged3.apply_change("r3", AddNetwork(Prefix("10.1.0.0/16")))
        converged3.converge()
        context = make_context(converged3, node="r3")
        evaluate(context)
        owner_endpoint = context.sharing.endpoint(65001)
        assert owner_endpoint.audit_log, "owner must have been queried"
        for entry in owner_endpoint.audit_log:
            assert entry.check in ("originates", "authorizes_origin")
            assert entry.response_type == "bool"


class TestEndpointConstruction:
    def test_one_endpoint_per_as(self, converged3):
        registry = SharingRegistry()
        build_sharing_endpoints(converged3.network, registry)
        assert {ep.asn for ep in registry.endpoints()} == {
            65001, 65002, 65003,
        }

    def test_endpoint_checks_registered(self, converged3):
        registry = SharingRegistry()
        build_sharing_endpoints(converged3.network, registry)
        endpoint = registry.endpoint(65001)
        assert endpoint.names() == [
            "authorizes_origin", "has_route_to", "originates",
        ]

    def test_originates_answers_truthfully(self, converged3):
        registry = SharingRegistry()
        build_sharing_endpoints(converged3.network, registry)
        assert registry.query(
            65002, 65001, "originates", Prefix("10.1.0.0/16")
        ) is True
        assert registry.query(
            65002, 65001, "originates", Prefix("10.9.0.0/16")
        ) is False
