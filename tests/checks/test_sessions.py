"""Tests for the session-cascade check."""

from repro.checks.sessions import SessionCascade
from repro.core.properties import CheckContext
from repro.core.sharing import SharingRegistry


def make_context(live, node="r2", peer="r1"):
    return CheckContext(
        clone=live.network, node=node, sharing=SharingRegistry(), peer=peer
    )


class TestSessionCascade:
    def test_quiet_system_clean(self, converged3):
        prop = SessionCascade()
        context = make_context(converged3)
        prop.prepare(context)
        assert prop.check(context) == []

    def test_own_session_reset_tolerated(self, converged3):
        """Malformed input resetting the session it arrived on (both
        ends) is expected protocol behaviour."""
        prop = SessionCascade()
        context = make_context(converged3, node="r2", peer="r1")
        prop.prepare(context)
        converged3.router("r2").handle_raw("r1", b"\x00" * 19)
        converged3.run(until=converged3.network.sim.now + 1)
        assert prop.check(context) == []

    def test_remote_reset_flagged(self, converged3):
        """A reset beyond the impersonated pair is emergent behaviour."""
        prop = SessionCascade()
        context = make_context(converged3, node="r2", peer="r1")
        prop.prepare(context)
        # Simulate an unrelated session falling over.
        converged3.router("r3").sessions["r2"].reset()
        violations = prop.check(context)
        assert violations
        assert violations[0].evidence["session"] == "r3<->r2"
        assert violations[0].fault_class == "programming_error"

    def test_crash_cascade_flagged(self, converged3_with_bug):
        """A crash at the explorer node resets *all* its sessions — the
        r2<->r3 collateral must be flagged."""
        from repro.bgp import faults
        from repro.bgp.attributes import AsPath, PathAttributes
        from repro.bgp.ip import IPv4Address, Prefix
        from repro.bgp.messages import UpdateMessage

        live = converged3_with_bug
        prop = SessionCascade()
        context = make_context(live, node="r2", peer="r1")
        prop.prepare(context)
        crasher = UpdateMessage(
            attributes=PathAttributes(
                as_path=AsPath.from_sequence(65001),
                next_hop=IPv4Address("172.16.0.1"),
                communities=(faults.COMMUNITY_CRASH_VALUE,),
            ),
            nlri=(Prefix("10.66.0.0/16"),),
        )
        live.router("r2").handle_raw("r1", crasher.encode())
        violations = prop.check(context)
        sessions = {v.evidence["session"] for v in violations}
        assert "r2<->r3" in sessions

    def test_no_peer_context_flags_everything(self, converged3):
        prop = SessionCascade()
        context = make_context(converged3, node="r2", peer=None)
        prop.prepare(context)
        converged3.router("r2").sessions["r1"].reset()
        assert prop.check(context)
