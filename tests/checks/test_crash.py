"""Tests for the crash-freedom property."""

from repro.checks.crash import CrashFreedom
from repro.core.properties import CheckContext
from repro.core.sharing import SharingRegistry


def make_context(live, node="r2"):
    return CheckContext(
        clone=live.network, node=node, sharing=SharingRegistry()
    )


class TestCrashFreedom:
    def test_clean_run_no_violation(self, converged3):
        prop = CrashFreedom()
        context = make_context(converged3)
        prop.prepare(context)
        assert prop.check(context) == []

    def test_crash_increment_detected(self, converged3):
        prop = CrashFreedom()
        context = make_context(converged3)
        prop.prepare(context)
        router = converged3.router("r2")
        router.crash_count += 1
        router.last_crash = "synthetic"
        violations = prop.check(context)
        assert len(violations) == 1
        assert violations[0].fault_class == "programming_error"
        assert "synthetic" in violations[0].detail

    def test_preexisting_crashes_not_reattributed(self, converged3):
        """Crashes before prepare() are history, not this input's fault."""
        router = converged3.router("r2")
        router.crash_count = 5
        prop = CrashFreedom()
        context = make_context(converged3)
        prop.prepare(context)
        assert prop.check(context) == []

    def test_neighbor_crash_detected(self, converged3):
        prop = CrashFreedom()
        context = make_context(converged3, node="r2")
        prop.prepare(context)
        neighbor = converged3.router("r3")
        neighbor.crash_count += 1
        neighbor.last_crash = "collateral"
        violations = prop.check(context)
        assert len(violations) == 1
        assert violations[0].node == "r3"
        assert violations[0].evidence["origin_node"] == "r2"

    def test_escaped_exception_reported(self, converged3):
        prop = CrashFreedom()
        context = make_context(converged3)
        prop.prepare(context)
        context.exploration_exception = RuntimeError("boom")
        violations = prop.check(context)
        assert len(violations) == 1
        assert "boom" in violations[0].detail
