"""Differential oracle wiring through the campaign layer.

The pre-pass runs once in the main process before exploration, so its
verdict is worker-, shard- and transport-independent by construction;
these tests pin the CampaignResult fields, the JSON report block, the
dashboard line, the CLI flag, and that execution mode really cannot
change the differential outcome.
"""

import json

from repro.bgp import decision
from repro.checks import default_property_suite
from repro.checks.differential import differential_fault_reports
from repro.cli import build_parser, main
from repro.core.faultclass import FAULT_MODEL_DIVERGENCE
from repro.core.orchestrator import DiceOrchestrator, OrchestratorConfig
from repro.core.reporting import campaign_to_dict
from repro.differential.extract import settle_live
from repro.viz.dashboard import render_campaign


def _campaign(live, **overrides):
    settings = dict(inputs_per_node=3, explorer_nodes=["r2"], seed=1)
    settings.update(overrides)
    config = OrchestratorConfig(**settings)
    return DiceOrchestrator(live, default_property_suite()).run_campaign(
        config
    )


class TestPrepass:
    def test_off_by_default(self, converged3):
        result = _campaign(converged3)
        assert result.differential_mode == "off"
        assert result.divergences == 0
        assert result.prefixes_checked == 0

    def test_reference_mode_populates_result(self, converged3):
        settle_live(converged3)
        result = _campaign(converged3, differential="reference")
        assert result.differential_mode == "reference"
        assert result.divergences == 0
        assert result.prefixes_checked > 0
        assert result.differential_skipped == ""
        assert result.oracle_wall_s >= 0.0

    def test_unsettled_live_system_skips_not_lies(self, converged3):
        # Inject a change and stop mid-propagation: the UPDATE is still
        # in flight, so any divergence would be a phantom. The pre-pass
        # must skip with a reason rather than report garbage.
        from repro.bgp.config import AddNetwork
        from repro.bgp.ip import Prefix

        converged3.apply_change("r3", AddNetwork(Prefix("10.99.0.0/16")))
        reports, stats = differential_fault_reports(converged3, "reference")
        assert reports == []
        assert stats["skipped"]
        assert stats["divergences"] == 0

    def test_divergence_reports_prepended(self):
        # Quickstart is a line — one path per prefix — so the inverted
        # LOCAL_PREF mutation needs the two-path system to be visible.
        from test_reference import two_path_system

        with decision.mutation(decision.MUTATION_INVERT_LOCAL_PREF):
            live = two_path_system()
            settle_live(live)
            result = _campaign(
                live, differential="reference", explorer_nodes=["r"]
            )
        assert result.divergences > 0
        divergence_reports = [
            r for r in result.reports
            if r.fault_class == FAULT_MODEL_DIVERGENCE
        ]
        assert divergence_reports
        assert result.reports[0].fault_class == FAULT_MODEL_DIVERGENCE
        first = divergence_reports[0]
        assert first.property_name == "differential:reference"
        assert "expected" in first.evidence
        assert "actual" in first.evidence

    def test_worker_count_cannot_change_the_verdict(self, converged3):
        settle_live(converged3)
        serial = _campaign(converged3, differential="reference")
        sharded = _campaign(
            converged3, differential="reference", workers=2
        )
        assert serial.divergences == sharded.divergences == 0
        assert serial.prefixes_checked == sharded.prefixes_checked


class TestReporting:
    def test_json_report_carries_differential_block(self, converged3):
        settle_live(converged3)
        result = _campaign(converged3, differential="reference")
        block = campaign_to_dict(result)["summary"]["differential"]
        assert block["mode"] == "reference"
        assert block["divergences"] == 0
        assert block["prefixes_checked"] == result.prefixes_checked
        assert block["skipped"] == ""
        json.dumps(block)  # must be serialisable as-is

    def test_dashboard_renders_oracle_line(self, converged3):
        settle_live(converged3)
        result = _campaign(converged3, differential="reference")
        text = render_campaign(result)
        assert "differential oracle" in text
        assert "reference" in text
        assert "0 divergence(s)" in text

    def test_dashboard_silent_when_off(self, converged3):
        result = _campaign(converged3)
        assert "differential oracle" not in render_campaign(result)


class TestCli:
    def test_flag_default_and_choices(self):
        assert build_parser().parse_args(["campaign"]).differential == "off"
        args = build_parser().parse_args(
            ["campaign", "--differential", "reference"]
        )
        assert args.differential == "reference"

    def test_campaign_with_reference_oracle(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = main([
            "campaign", "--topology", "quickstart", "--inputs", "3",
            "--nodes", "r2", "--differential", "reference",
            "--report", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "differential oracle : reference" in out
        assert "0 divergence(s)" in out
        data = json.loads(path.read_text())
        assert data["summary"]["differential"]["divergences"] == 0

    def test_gadget_topologies_exposed_to_cli(self):
        parser = build_parser()
        for name in ("wedgie", "mrai-race", "damping-race", "med-trap"):
            args = parser.parse_args(["campaign", "--topology", name])
            assert args.topology == name
