"""The reference oracle against the live simulator.

The oracle re-derives route propagation independently; these tests pin
both halves of its contract — agreement with the simulator on every
built-in topology, and the ability to *catch* a seeded simulator bug
(the whole point of a differential oracle).
"""

import pytest

from repro.bgp import decision
from repro.bgp.config import NeighborConfig, RouterConfig
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.policy import Filter
from repro.core.live import LiveSystem
from repro.differential.canonical import BLAME_FIELDS
from repro.differential.extract import (
    capture_canonical_ribs,
    network_settled,
    oracle_for_live,
    settle_live,
)
from repro.differential.reference import ReferenceBackend, ReferenceOracle
from repro.net.link import LinkProfile
from repro.topo.gadgets import GADGETS

SETTLED_GADGETS = [name for name in GADGETS if name != "bad-gadget"]


def _verify(live) -> list:
    return oracle_for_live(live).verify_fixpoint(capture_canonical_ribs(live))


class TestFixpointAgreement:
    def test_quickstart_verifies_clean(self, converged3):
        assert _verify(converged3) == []

    @pytest.mark.slow
    def test_demo27_verifies_clean(self, demo27_topology):
        live = LiveSystem.build(
            demo27_topology.configs, demo27_topology.links, seed=3
        )
        settle_live(live, deadline=300.0)
        assert network_settled(live)
        assert _verify(live) == []

    @pytest.mark.parametrize("name", SETTLED_GADGETS)
    def test_gadgets_verify_clean(self, name):
        configs, links = GADGETS[name]()
        live = LiveSystem.build(configs, links, seed=11)
        settle_live(live, deadline=120.0)
        assert network_settled(live), f"{name} did not settle"
        assert _verify(live) == [], f"{name} diverged from the oracle"

    def test_bad_gadget_oracle_also_fails_to_converge(self):
        configs, links = GADGETS["bad-gadget"]()
        outcome = ReferenceBackend().converged_ribs(configs, links)
        assert not outcome.converged

    def test_demo27_constructs_same_fixpoint(self, demo27_topology):
        outcome = ReferenceBackend().converged_ribs(
            demo27_topology.configs, demo27_topology.links
        )
        assert outcome.converged
        live = LiveSystem.build(
            demo27_topology.configs, demo27_topology.links, seed=3
        )
        settle_live(live, deadline=300.0)
        oracle = ReferenceOracle(demo27_topology.configs,
                                 links=demo27_topology.links)
        from repro.differential.canonical import RibDiff

        assert RibDiff().diff(
            outcome.ribs, capture_canonical_ribs(live)
        ) == []


def two_path_system() -> LiveSystem:
    """Origin o; r hears the prefix via a (lp 200) and b (lp 100).

    The minimal topology where an inverted LOCAL_PREF comparison
    changes the outcome — shared with the campaign-layer tests.
    """
    prefix = Prefix("10.77.0.0/16")
    o = RouterConfig(
        name="o", local_as=65200,
        router_id=IPv4Address("172.16.9.100"),
        networks=(prefix,),
        neighbors=(
            NeighborConfig(peer="a", peer_as=65201),
            NeighborConfig(peer="b", peer_as=65202),
        ),
    )
    relay = [
        RouterConfig(
            name=name, local_as=asn,
            router_id=IPv4Address(f"172.16.9.{index}"),
            neighbors=(
                NeighborConfig(peer="o", peer_as=65200),
                NeighborConfig(peer="r", peer_as=65203),
            ),
        )
        for index, (name, asn) in enumerate(
            (("a", 65201), ("b", 65202)), start=1
        )
    ]
    pref_a = Filter.compile(
        "filter via_a { bgp_local_pref = 200; accept; }"
    )
    pref_b = Filter.compile(
        "filter via_b { bgp_local_pref = 100; accept; }"
    )
    r = RouterConfig(
        name="r", local_as=65203,
        router_id=IPv4Address("172.16.9.200"),
        neighbors=(
            NeighborConfig(peer="a", peer_as=65201,
                           import_filter="via_a"),
            NeighborConfig(peer="b", peer_as=65202,
                           import_filter="via_b"),
        ),
        filters={"via_a": pref_a, "via_b": pref_b},
    )
    wire = LinkProfile.wan(latency_ms=1.0, jitter_ms=0.0)
    links = [("o", "a", wire), ("o", "b", wire),
             ("a", "r", wire), ("b", "r", wire)]
    return LiveSystem.build([o, *relay, r], links, seed=5)


class TestSeededMutationCaught:
    """The acceptance criterion: a wrong decision process is flagged."""

    def test_healthy_system_verifies_clean(self):
        live = two_path_system()
        settle_live(live)
        assert _verify(live) == []

    def test_inverted_local_pref_caught_with_blame(self):
        with decision.mutation(decision.MUTATION_INVERT_LOCAL_PREF):
            live = two_path_system()
            settle_live(live)
            divergences = _verify(live)
        assert divergences, "mutated simulator escaped the oracle"
        at_r = [d for d in divergences if d.router == "r"]
        assert at_r, "blame should land on the router that chose wrongly"
        fields = {d.field for d in at_r}
        assert fields <= set(BLAME_FIELDS) | {"route"}
        # The wrong choice is visible as attribute-level blame: r picked
        # the lp-100 path via b where the oracle expects lp 200 via a.
        assert {"via", "local_pref"} & fields
        blamed = next(d for d in at_r if d.field in ("via", "local_pref"))
        assert blamed.expected != blamed.actual

    def test_mutation_context_restores_behaviour(self):
        live = two_path_system()
        settle_live(live)
        assert _verify(live) == []  # hook left no residue


class TestIndependence:
    """The oracle must not lean on the model it is checking.

    ``repro/__init__.py`` imports the whole simulator for its public
    API, so a runtime sys.modules check cannot isolate the oracle; the
    enforceable contract is the ``oracle-independence`` import contract
    in :mod:`repro.analysis.contracts`, checked (transitively) by the
    ISO001 lint rule.  This test pins the contract to this package: the
    declaration must exist, the current tree must satisfy it, and a
    synthetic violation must be caught — so the lint gate, not this
    file, is where the allowlist now lives.
    """

    def _iso_findings(self, paths):
        from repro.analysis.engine import lint_paths

        report = lint_paths(paths)
        return [f for f in report.findings if f.rule == "ISO001"]

    def test_oracle_contract_is_declared(self):
        from repro.analysis.contracts import IMPORT_CONTRACTS

        contract = next(
            c for c in IMPORT_CONTRACTS if c.name == "oracle-independence"
        )
        assert set(contract.roots) == {
            "repro.differential.canonical",
            "repro.differential.reference",
        }
        # The machinery under test must stay forbidden however many
        # import hops away.
        assert {
            "repro.bgp.decision", "repro.bgp.router", "repro.bgp.rib",
        } <= set(contract.forbid)

    def test_oracle_modules_satisfy_the_contract(self):
        import repro.differential as package
        from pathlib import Path

        findings = self._iso_findings([Path(package.__file__).parent])
        oracle_findings = [
            f
            for f in findings
            if f.path.endswith(("canonical.py", "reference.py"))
        ]
        assert not oracle_findings, (
            "oracle modules violate the independence contract: "
            + "; ".join(f.message for f in oracle_findings)
        )

    def test_contract_catches_a_synthetic_violation(self, tmp_path):
        """Doctor a copy of the oracle to import the decision process
        and assert ISO001 flags it — the gate must not be vacuous."""
        import repro
        from pathlib import Path
        import shutil

        src_root = Path(repro.__file__).parent
        copy_root = tmp_path / "repro"
        shutil.copytree(src_root, copy_root,
                        ignore=shutil.ignore_patterns("__pycache__"))
        reference = copy_root / "differential" / "reference.py"
        reference.write_text(
            "from repro.bgp import decision\n" + reference.read_text()
        )
        findings = self._iso_findings([copy_root / "differential"])
        assert any(
            f.path.endswith("reference.py") and "decision" in f.message
            for f in findings
        ), "doctored oracle import escaped the ISO001 contract check"

    def test_oracle_runs_without_simulator_state(self):
        """The oracle produces its fixpoint from configs alone — no
        network, no routers, no clock."""
        configs, links = GADGETS["good-gadget"]()
        outcome = ReferenceOracle(
            configs, links=links
        ).stable_state()
        assert outcome.converged
        assert all(table for table in outcome.ribs.values())

    def test_oracle_handles_unestablished_sessions(self):
        """An adjacency restriction drops routes that would need the
        missing session — no phantom expectations."""
        configs, links = GADGETS["good-gadget"]()
        oracle = ReferenceOracle(
            configs, adjacency={cfg.name: () for cfg in configs}
        )
        outcome = oracle.stable_state()
        assert outcome.converged
        for name, table in outcome.ribs.items():
            for route in table.values():
                assert route.kind == "static", (
                    f"{name} learned {route} without any session"
                )
