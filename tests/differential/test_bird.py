"""The BIRD oracle: the pure scrape parser, plus the real-daemon test.

``parse_birdc_routes`` is exercised against canned BIRD 2.x transcripts
so the scraping logic is pinned without needing the daemons; the single
``bird``-marked test drives the full namespace deployment and only runs
where root + bird2 are present (the bird-smoke CI job).
"""

import pytest

from repro.core.live import LiveSystem
from repro.differential.bird import (
    BirdBackend,
    BirdError,
    parse_birdc_routes,
)
from repro.differential.canonical import RibDiff
from repro.differential.extract import capture_canonical_ribs, settle_live
from repro.topo.gadgets import GADGETS

TRANSCRIPT = """\
BIRD 2.0.12 ready.
Table master4:
10.1.0.0/16          unicast [originated 10:00:00.000] * (200)
\tblackhole
\tType: static univ
10.2.0.0/16          unicast [peer_0 10:00:01.234] * (100) [AS65002i]
\tvia 10.200.0.2 on d0a
\tType: BGP univ
\tBGP.origin: IGP
\tBGP.as_path: 65002
\tBGP.next_hop: 10.200.0.2
\tBGP.local_pref: 100
10.3.0.0/16          unicast [peer_0 10:00:01.500] * (100) [AS65004i]
\tvia 10.200.0.2 on d0a
\tType: BGP univ
\tBGP.origin: EGP
\tBGP.as_path: 65002 65003 { 65004 65005 }
\tBGP.next_hop: 10.200.0.2
\tBGP.med: 20
\tBGP.local_pref: 200
\tBGP.community: (65000,666) (65000,1) (65000,666)
                     unicast [peer_1 10:00:01.700] (100) [AS65004i]
\tvia 10.200.0.6 on d1a
\tType: BGP univ
\tBGP.origin: IGP
\tBGP.as_path: 65006 65004
\tBGP.next_hop: 10.200.0.6
\tBGP.local_pref: 100
"""


class TestParseBirdcRoutes:
    def test_transcript_yields_four_routes(self):
        routes = parse_birdc_routes(TRANSCRIPT)
        assert len(routes) == 4
        assert [r.prefix for r in routes] == [
            "10.1.0.0/16", "10.2.0.0/16", "10.3.0.0/16", "10.3.0.0/16",
        ]

    def test_static_route_recognised(self):
        route = parse_birdc_routes(TRANSCRIPT)[0]
        assert route.protocol == "originated"
        assert route.route_type == "static"
        assert route.selected

    def test_bgp_attributes_scraped(self):
        route = parse_birdc_routes(TRANSCRIPT)[1]
        assert route.protocol == "peer_0"
        assert route.route_type == "BGP"
        assert route.origin == "IGP"
        assert route.as_path == (("sequence", (65002,)),)
        assert route.next_hop == "10.200.0.2"
        assert route.local_pref == 100
        assert route.med is None

    def test_as_set_segments_and_communities(self):
        route = parse_birdc_routes(TRANSCRIPT)[2]
        assert route.as_path == (
            ("sequence", (65002, 65003)),
            ("set", (65004, 65005)),
        )
        assert route.med == 20
        # Packed (high << 16 | low), sorted and deduplicated.
        assert route.communities == (
            (65000 << 16) | 1,
            (65000 << 16) | 666,
        )

    def test_continuation_line_inherits_prefix_and_is_unselected(self):
        alternate = parse_birdc_routes(TRANSCRIPT)[3]
        assert alternate.prefix == "10.3.0.0/16"
        assert alternate.protocol == "peer_1"
        assert not alternate.selected

    def test_selected_marker_not_confused_by_metric(self):
        # The "*" must come from between "]" and "(", not from noise
        # elsewhere on the line.
        routes = parse_birdc_routes(TRANSCRIPT)
        assert [r.selected for r in routes] == [True, True, True, False]

    def test_continuation_without_prior_prefix_rejected(self):
        with pytest.raises(BirdError):
            parse_birdc_routes(
                "                     unicast [peer_0 10:00] * (100)\n"
            )

    def test_empty_output_parses_to_nothing(self):
        assert parse_birdc_routes("BIRD 2.0.12 ready.\nTable master4:\n") == []


class TestAvailability:
    def test_available_reports_concrete_reason(self):
        usable, reason = BirdBackend().available()
        if usable:
            assert reason == ""
        else:
            assert "missing binaries" in reason or "root" in reason


@pytest.mark.bird
@pytest.mark.slow
@pytest.mark.timeout(180)
class TestEndToEnd:
    """Real daemons vs the simulator; skipped unless root + bird2."""

    def test_good_gadget_matches_simulator(self):
        configs, links = GADGETS["good-gadget"]()
        outcome = BirdBackend().converged_ribs(configs, links)
        assert outcome.converged
        live = LiveSystem.build(configs, links, seed=11)
        settle_live(live, deadline=120.0)
        divergences = RibDiff().diff(
            outcome.ribs, capture_canonical_ribs(live)
        )
        assert divergences == [], [d.describe() for d in divergences]
