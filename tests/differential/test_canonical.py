"""Canonical route form and the attribute-blame differ."""

from repro.bgp.attributes import (
    SEGMENT_AS_SEQUENCE,
    SEGMENT_AS_SET,
    AsPath,
    Origin,
    PathAttributes,
)
from repro.bgp.ip import IPv4Address, Prefix
from repro.differential.canonical import (
    BLAME_FIELDS,
    CanonicalRoute,
    RibDiff,
)

PFX = Prefix("172.16.0.0", 24)


def _route(**overrides) -> CanonicalRoute:
    base = dict(
        kind="ebgp", via="a", via_as=65001, via_bgp_id=1,
        origin=int(Origin.IGP),
        as_path=(("sequence", (65001,)),),
        next_hop=int(IPv4Address("10.0.0.1")),
        med=None, local_pref=None, communities=(),
    )
    base.update(overrides)
    return CanonicalRoute(**base)


class TestCanonicalization:
    def test_from_attributes_round_trips_segments(self):
        attrs = PathAttributes(
            as_path=AsPath((
                (SEGMENT_AS_SEQUENCE, (65001, 65002)),
                (SEGMENT_AS_SET, (65003, 65004)),
            )),
            next_hop=IPv4Address("10.0.0.1"),
        )
        route = CanonicalRoute.from_attributes(attrs, kind="ebgp", via="a")
        assert route.as_path == (
            ("sequence", (65001, 65002)),
            ("set", (65003, 65004)),
        )

    def test_communities_sorted_and_deduplicated(self):
        attrs = PathAttributes(
            next_hop=IPv4Address("10.0.0.1"),
            communities=(300, 100, 300, 200),
        )
        route = CanonicalRoute.from_attributes(attrs, kind="ebgp")
        assert route.communities == (100, 200, 300)

    def test_absent_optional_attributes_stay_none(self):
        attrs = PathAttributes(next_hop=IPv4Address("10.0.0.1"))
        route = CanonicalRoute.from_attributes(attrs, kind="static")
        assert route.med is None
        assert route.local_pref is None


class TestRibDiff:
    def test_identical_ribs_have_no_divergences(self):
        rib = {"r1": {PFX: _route()}}
        assert RibDiff().diff(rib, dict(rib)) == []

    def test_field_level_blame(self):
        expected = {"r1": {PFX: _route(local_pref=200)}}
        actual = {"r1": {PFX: _route(local_pref=100)}}
        divergences = RibDiff().diff(expected, actual)
        assert len(divergences) == 1
        only = divergences[0]
        assert only.field == "local_pref"
        assert only.expected == 200
        assert only.actual == 100
        assert "local_pref" in only.describe()

    def test_missing_route_blames_presence_not_fields(self):
        expected = {"r1": {PFX: _route()}}
        actual = {"r1": {}}
        divergences = RibDiff().diff(expected, actual)
        assert [d.field for d in divergences] == ["route"]
        assert "(no route)" in divergences[0].describe()

    def test_multiple_fields_reported_in_blame_order(self):
        expected = {"r1": {PFX: _route(med=5, via="a", via_as=65001)}}
        actual = {"r1": {PFX: _route(med=9, via="b", via_as=65002)}}
        fields = [d.field for d in RibDiff().diff(expected, actual)]
        assert fields == sorted(fields, key=BLAME_FIELDS.index)
        assert set(fields) == {"via", "med"}

    def test_diff_is_deterministically_ordered(self):
        other = Prefix("172.16.1.0", 24)
        expected = {
            "r2": {PFX: _route()},
            "r1": {other: _route(), PFX: _route(med=1)},
        }
        actual = {"r1": {PFX: _route(med=2)}, "r2": {}}
        first = RibDiff().diff(expected, actual)
        second = RibDiff().diff(expected, actual)
        assert first == second
        routers = [d.router for d in first]
        assert routers == sorted(routers)
