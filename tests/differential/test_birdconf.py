"""The RouterConfig → BIRD 2.x compiler."""

import pytest

from repro.bgp.config import NeighborConfig, RouterConfig
from repro.bgp.damping import DampingParams
from repro.bgp.ip import IPv4Address, Prefix
from repro.bgp.policy import Filter
from repro.bgp.policy_lang import parse_single_filter
from repro.differential.birdconf import (
    AddressPlan,
    CompileError,
    compile_filter,
    compile_router,
)
from repro.net.link import LinkProfile
from repro.topo.demo27 import build_demo27
from repro.topo.gadgets import GADGETS

WIRE = LinkProfile.wan(latency_ms=1.0)


def _plan(*pairs):
    return AddressPlan([(a, b, WIRE) for a, b in pairs])


def _router(name="r1", **overrides) -> RouterConfig:
    base = dict(
        name=name, local_as=65001,
        router_id=IPv4Address("172.16.0.1"),
        networks=(Prefix("10.1.0.0/16"),),
        neighbors=(NeighborConfig(peer="r2", peer_as=65002),),
    )
    base.update(overrides)
    return RouterConfig(**base)


class TestAddressPlan:
    def test_deterministic_and_symmetric(self):
        plan_a = _plan(("r1", "r2"), ("r2", "r3"))
        plan_b = _plan(("r1", "r2"), ("r2", "r3"))
        session = plan_a.session("r1", "r2")
        assert session == plan_b.session("r1", "r2")
        mirror = plan_a.session("r2", "r1")
        assert session.local == mirror.remote
        assert session.remote == mirror.local

    def test_distinct_links_get_distinct_subnets(self):
        plan = _plan(("r1", "r2"), ("r2", "r3"))
        first = plan.session("r1", "r2")
        second = plan.session("r2", "r3")
        assert int(first.local) // 4 != int(second.local) // 4

    def test_unknown_link_raises(self):
        with pytest.raises(CompileError):
            _plan(("r1", "r2")).session("r1", "r9")


class TestFilterCompilation:
    def _compile(self, body: str, neighbor=None, prelude=()) -> str:
        definition = parse_single_filter(f"filter f {{ {body} }}")
        return compile_filter(definition, "f", neighbor,
                              accept_prelude=prelude)

    def test_local_pref_assignment(self):
        text = self._compile("bgp_local_pref = 200; accept;")
        assert "bgp_local_pref = 200;" in text
        assert "accept;" in text

    def test_fall_through_rejects_explicitly(self):
        text = self._compile("accept;")
        assert text.rstrip().endswith("reject;\n}".replace("\n", "\n"))
        assert text.count("reject;") == 1

    def test_origin_literals_become_symbolic_names(self):
        text = self._compile("if bgp_origin = 0 then accept; reject;")
        assert "bgp_origin = ORIGIN_IGP" in text

    def test_community_match_and_add(self):
        text = self._compile(
            "if bgp_community ~ (65000, 666) then reject; "
            "bgp_community.add((65000, 1)); accept;"
        )
        assert "bgp_community ~ (65000, 666)" in text
        assert "bgp_community.add((65000, 1));" in text

    def test_path_length_and_prepend(self):
        text = self._compile(
            "if bgp_path.len > 3 then reject; "
            "bgp_path.prepend(65001); accept;"
        )
        assert "bgp_path.len > 3" in text
        assert "bgp_path.prepend(65001);" in text

    def test_peer_as_substituted_from_neighbor(self):
        neighbor = NeighborConfig(peer="r2", peer_as=65002)
        text = self._compile(
            "if peer_as = 65002 then accept; reject;", neighbor=neighbor
        )
        assert "65002 = 65002" in text
        assert "peer_as" not in text

    def test_peer_as_without_neighbor_context_refused(self):
        with pytest.raises(CompileError):
            self._compile("if peer_as = 65002 then accept; reject;")

    def test_source_static_comparison_maps(self):
        text = self._compile("if source = 0 then accept; reject;")
        assert "source = RTS_STATIC" in text

    def test_source_ebgp_comparison_refused(self):
        with pytest.raises(CompileError):
            self._compile("if source = 1 then accept; reject;")

    def test_accept_prelude_lands_before_every_accept(self):
        text = self._compile(
            "if bgp_path.len > 2 then accept; accept;",
            prelude=("bgp_med = 10;",),
        )
        accepts = text.count("accept;")
        assert accepts == 2
        assert text.count("bgp_med = 10;") == accepts
        for before, after in zip(
            text.splitlines(), text.splitlines()[1:], strict=False
        ):
            if after.strip() == "accept;":
                assert before.strip() == "bgp_med = 10;"


class TestRouterCompilation:
    def test_basic_structure(self):
        text = compile_router(_router(), _plan(("r1", "r2")))
        assert "router id 172.16.0.1;" in text
        assert "route 10.1.0.0/16 blackhole;" in text
        assert "local 10.200.0.1 as 65001;" in text
        assert "neighbor 10.200.0.2 as 65002;" in text
        assert "next hop self;" in text

    def test_export_med_folded_into_export_filter(self):
        config = _router(
            neighbors=(
                NeighborConfig(peer="r2", peer_as=65002, export_med=7),
            ),
        )
        text = compile_router(config, _plan(("r1", "r2")))
        filter_block = text.split("filter f_0_export")[1].split("}")[0]
        assert "bgp_med = 7;" in filter_block

    def test_named_filters_compiled_per_session(self):
        config = _router(
            neighbors=(
                NeighborConfig(peer="r2", peer_as=65002,
                               import_filter="pref"),
            ),
            filters={
                "pref": Filter.compile(
                    "filter pref { bgp_local_pref = 300; accept; }"
                )
            },
        )
        text = compile_router(config, _plan(("r1", "r2")))
        assert "filter f_0_import" in text
        assert "bgp_local_pref = 300;" in text

    def test_damping_refused(self):
        config = _router(damping=DampingParams())
        with pytest.raises(CompileError, match="damping"):
            compile_router(config, _plan(("r1", "r2")))

    def test_always_compare_med_refused(self):
        config = _router(always_compare_med=True)
        with pytest.raises(CompileError, match="always_compare_med"):
            compile_router(config, _plan(("r1", "r2")))

    def test_unknown_filter_reference_refused(self):
        config = _router(
            neighbors=(
                NeighborConfig(peer="r2", peer_as=65002,
                               import_filter="missing"),
            ),
        )
        with pytest.raises(CompileError, match="missing"):
            compile_router(config, _plan(("r1", "r2")))

    def test_every_compilable_builtin_topology_compiles(self):
        topo = build_demo27()
        suites = {"demo27": (topo.configs, topo.links)}
        for name, builder in GADGETS.items():
            suites[name] = builder()
        for _name, (configs, links) in suites.items():
            plan = AddressPlan(links)
            for config in configs:
                if config.damping is not None:
                    continue  # BIRD 2.x has no damping; refused by design
                text = compile_router(config, plan)
                assert text.count("protocol bgp") == len(config.neighbors)

    def test_compilation_is_reproducible(self):
        topo = build_demo27()
        plan_a = AddressPlan(topo.links)
        plan_b = AddressPlan(topo.links)
        for config in topo.configs:
            assert compile_router(config, plan_a) == compile_router(
                config, plan_b
            )
