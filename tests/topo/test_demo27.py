"""Tests for the 27-router demo topology (Figure 1)."""

from repro.checks.reachability import convergence_complete
from repro.core.live import LiveSystem
from repro.topo.demo27 import DEMO27_PARAMS, build_demo27


class TestDemo27:
    def test_exactly_27_routers(self, demo27_topology):
        assert len(demo27_topology.configs) == 27

    def test_tier_shape(self, demo27_topology):
        assert len(demo27_topology.nodes_in_tier(1)) == 3
        assert len(demo27_topology.nodes_in_tier(2)) == 8
        assert len(demo27_topology.nodes_in_tier(3)) == 16

    def test_reproducible(self, demo27_topology):
        again = build_demo27()
        assert again.relationships == demo27_topology.relationships
        assert [c.local_as for c in again.configs] == [
            c.local_as for c in demo27_topology.configs
        ]

    def test_internet_like_latencies(self, demo27_topology):
        for _, _, profile in demo27_topology.links:
            assert 0.002 <= profile.latency_s <= 0.060
            assert profile.jitter_s > 0

    def test_converges_and_is_loop_free(self, demo27_topology):
        live = LiveSystem.build(
            demo27_topology.configs, demo27_topology.links, seed=27
        )
        live.converge(deadline=600)
        assert convergence_complete(live.network)

    def test_params_stable(self):
        assert DEMO27_PARAMS.total == 27
