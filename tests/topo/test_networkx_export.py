"""Tests for the networkx topology export."""

import networkx as nx

from repro.topo.internet import TopologyParams, build_internet


def test_graph_structure_matches():
    topology = build_internet(TopologyParams(tier1=2, transit=3, stubs=4,
                                             seed=11))
    graph = topology.to_networkx()
    assert graph.number_of_nodes() == len(topology.configs)
    assert graph.number_of_edges() == len(topology.links)


def test_node_attributes():
    topology = build_internet(TopologyParams(tier1=2, transit=2, stubs=2,
                                             seed=1))
    graph = topology.to_networkx()
    for config in topology.configs:
        node = graph.nodes[config.name]
        assert node["asn"] == config.local_as
        assert node["tier"] == topology.tiers[config.name]


def test_edge_attributes():
    topology = build_internet(TopologyParams(tier1=2, transit=2, stubs=2,
                                             seed=1))
    graph = topology.to_networkx()
    for _a, _b, data in graph.edges(data=True):
        assert data["relationship"] in ("customer", "peer", "provider")
        assert data["latency_ms"] > 0


def test_graph_connected():
    topology = build_internet(TopologyParams(tier1=3, transit=8, stubs=16,
                                             seed=2711))
    graph = topology.to_networkx()
    assert nx.is_connected(graph)


def test_diameter_is_internet_like():
    """Tiered structure keeps the AS-level diameter small."""
    topology = build_internet(TopologyParams(tier1=3, transit=8, stubs=16,
                                             seed=2711))
    graph = topology.to_networkx()
    assert nx.diameter(graph) <= 6
