"""Tests for the policy-conflict gadgets."""

from repro.core.live import LiveSystem
from repro.topo.gadgets import (
    GADGET_PREFIX,
    build_bad_gadget,
    build_disagree,
    build_good_gadget,
)


def run_gadget(builder, seed=7, until=30.0):
    configs, links = builder()
    live = LiveSystem.build(configs, links, seed=seed)
    live.run(until=until)
    return live


class TestBadGadget:
    def test_oscillates(self):
        live = run_gadget(build_bad_gadget)
        changes = [
            change
            for change in live.router("r1").loc_rib.journal()
            if change.prefix == GADGET_PREFIX
        ]
        # Dozens of flaps in 30 simulated seconds, not a handful.
        assert len(changes) > 20

    def test_oscillation_everywhere_on_the_wheel(self):
        live = run_gadget(build_bad_gadget)
        for name in ("r1", "r2", "r3"):
            changes = live.router(name).loc_rib.changes_total
            assert changes > 20, name

    def test_never_quiesces(self):
        live = run_gadget(build_bad_gadget)
        before = sum(r.loc_rib.changes_total for r in live.routers())
        live.run(until=live.network.sim.now + 20)
        after = sum(r.loc_rib.changes_total for r in live.routers())
        assert after > before

    def test_origin_itself_stable(self):
        live = run_gadget(build_bad_gadget)
        assert live.router("d").loc_rib.changes_total == 1


class TestGoodGadget:
    def test_converges(self):
        live = run_gadget(build_good_gadget)
        before = sum(r.loc_rib.changes_total for r in live.routers())
        live.run(until=live.network.sim.now + 20)
        after = sum(r.loc_rib.changes_total for r in live.routers())
        assert after == before

    def test_everyone_prefers_direct_path(self):
        live = run_gadget(build_good_gadget)
        for name in ("r1", "r2", "r3"):
            route = live.router(name).loc_rib.get(GADGET_PREFIX)
            assert route.peer == "d"


class TestDisagree:
    def test_converges_to_a_stable_state(self):
        live = run_gadget(build_disagree)
        before = sum(r.loc_rib.changes_total for r in live.routers())
        live.run(until=live.network.sim.now + 20)
        after = sum(r.loc_rib.changes_total for r in live.routers())
        assert after == before
        assert live.router("x").loc_rib.get(GADGET_PREFIX) is not None
        assert live.router("y").loc_rib.get(GADGET_PREFIX) is not None

    def test_at_most_one_indirect(self):
        """x via y and y via x simultaneously would be a loop; stable
        DISAGREE states have at least one node on its direct path."""
        live = run_gadget(build_disagree)
        x_route = live.router("x").loc_rib.get(GADGET_PREFIX)
        y_route = live.router("y").loc_rib.get(GADGET_PREFIX)
        assert "d" in (x_route.peer, y_route.peer)
