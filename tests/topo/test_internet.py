"""Tests for the Internet-like topology generator."""

import pytest

from repro.checks.reachability import convergence_complete
from repro.core.live import LiveSystem
from repro.topo.internet import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    TopologyParams,
    build_internet,
)

SMALL = TopologyParams(tier1=2, transit=3, stubs=4, seed=11)


class TestStructure:
    def test_node_counts(self):
        topology = build_internet(SMALL)
        assert len(topology.configs) == SMALL.total
        assert len(topology.nodes_in_tier(1)) == 2
        assert len(topology.nodes_in_tier(2)) == 3
        assert len(topology.nodes_in_tier(3)) == 4

    def test_tier1_full_mesh_of_peers(self):
        topology = build_internet(SMALL)
        tier1 = topology.nodes_in_tier(1)
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                assert topology.relationships[(a, b)] == REL_PEER

    def test_every_stub_has_a_provider(self):
        topology = build_internet(SMALL)
        for stub in topology.nodes_in_tier(3):
            providers = [
                other
                for (node, other), rel in topology.relationships.items()
                if node == stub and rel == REL_PROVIDER
            ]
            assert providers

    def test_relationships_symmetric(self):
        topology = build_internet(SMALL)
        inverse = {
            REL_CUSTOMER: REL_PROVIDER,
            REL_PROVIDER: REL_CUSTOMER,
            REL_PEER: REL_PEER,
        }
        for (a, b), rel in topology.relationships.items():
            assert topology.relationships[(b, a)] == inverse[rel]

    def test_unique_asns_and_prefixes(self):
        topology = build_internet(SMALL)
        asns = [config.local_as for config in topology.configs]
        assert len(asns) == len(set(asns))
        prefixes = [config.networks[0] for config in topology.configs]
        assert len(prefixes) == len(set(prefixes))

    def test_deterministic_per_seed(self):
        a = build_internet(SMALL)
        b = build_internet(SMALL)
        assert [c.name for c in a.configs] == [c.name for c in b.configs]
        assert a.relationships == b.relationships
        different = build_internet(
            TopologyParams(tier1=2, transit=3, stubs=4, seed=12)
        )
        assert a.relationships != different.relationships

    def test_config_for_lookup(self):
        topology = build_internet(SMALL)
        assert topology.config_for("t1-1").name == "t1-1"
        with pytest.raises(KeyError):
            topology.config_for("nope")


class TestPolicies:
    def test_import_filters_set_relationship_pref(self):
        """Customer-learned routes must carry LOCAL_PREF 200 after
        import, peers 100, providers 50 (Gao-Rexford)."""
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        # Find a transit node and inspect a route learned from a stub
        # customer.
        for transit in topology.nodes_in_tier(2):
            router = live.router(transit)
            for peer, rib in router.adj_rib_in.items():
                relationship = topology.relationships.get((transit, peer))
                for route in rib.routes():
                    expected = {
                        REL_CUSTOMER: 200, REL_PEER: 100, REL_PROVIDER: 50,
                    }[relationship]
                    assert route.attributes.local_pref == expected

    def test_valley_free_export(self):
        """No route learned from a peer/provider may be exported to
        another peer/provider — check Adj-RIB-Out contents."""
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        from repro.topo.internet import _REL_COMMUNITY

        peer_tag = _REL_COMMUNITY[REL_PEER]
        provider_tag = _REL_COMMUNITY[REL_PROVIDER]
        for name in sorted(live.network.processes):
            router = live.router(name)
            for peer, rib_out in router.adj_rib_out.items():
                relationship = topology.relationships.get((name, peer))
                if relationship == REL_CUSTOMER:
                    continue  # everything may go to customers
                for prefix in rib_out.prefixes():
                    advertised = rib_out.advertised(prefix)
                    communities = advertised.attributes.communities
                    assert peer_tag not in communities, (
                        f"{name} leaked a peer route to {relationship} {peer}"
                    )
                    assert provider_tag not in communities, (
                        f"{name} leaked a provider route to "
                        f"{relationship} {peer}"
                    )


class TestConvergence:
    def test_small_internet_converges_fully(self):
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        assert convergence_complete(live.network)

    def test_all_sessions_established(self):
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        for router in live.routers():
            assert len(router.established_peers()) == len(router.sessions)
