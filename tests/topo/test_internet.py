"""Tests for the Internet-like topology generator."""

import hashlib
import os
import subprocess
import sys

import pytest

from repro.checks.reachability import convergence_complete
from repro.core.live import LiveSystem
from repro.topo.internet import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    TopologyParams,
    build_internet,
)

SMALL = TopologyParams(tier1=2, transit=3, stubs=4, seed=11)


class TestStructure:
    def test_node_counts(self):
        topology = build_internet(SMALL)
        assert len(topology.configs) == SMALL.total
        assert len(topology.nodes_in_tier(1)) == 2
        assert len(topology.nodes_in_tier(2)) == 3
        assert len(topology.nodes_in_tier(3)) == 4

    def test_tier1_full_mesh_of_peers(self):
        topology = build_internet(SMALL)
        tier1 = topology.nodes_in_tier(1)
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                assert topology.relationships[(a, b)] == REL_PEER

    def test_every_stub_has_a_provider(self):
        topology = build_internet(SMALL)
        for stub in topology.nodes_in_tier(3):
            providers = [
                other
                for (node, other), rel in topology.relationships.items()
                if node == stub and rel == REL_PROVIDER
            ]
            assert providers

    def test_relationships_symmetric(self):
        topology = build_internet(SMALL)
        inverse = {
            REL_CUSTOMER: REL_PROVIDER,
            REL_PROVIDER: REL_CUSTOMER,
            REL_PEER: REL_PEER,
        }
        for (a, b), rel in topology.relationships.items():
            assert topology.relationships[(b, a)] == inverse[rel]

    def test_unique_asns_and_prefixes(self):
        topology = build_internet(SMALL)
        asns = [config.local_as for config in topology.configs]
        assert len(asns) == len(set(asns))
        prefixes = [config.networks[0] for config in topology.configs]
        assert len(prefixes) == len(set(prefixes))

    def test_deterministic_per_seed(self):
        a = build_internet(SMALL)
        b = build_internet(SMALL)
        assert [c.name for c in a.configs] == [c.name for c in b.configs]
        assert a.relationships == b.relationships
        different = build_internet(
            TopologyParams(tier1=2, transit=3, stubs=4, seed=12)
        )
        assert a.relationships != different.relationships

    def test_config_for_lookup(self):
        topology = build_internet(SMALL)
        assert topology.config_for("t1-1").name == "t1-1"
        with pytest.raises(KeyError):
            topology.config_for("nope")


class TestPolicies:
    def test_import_filters_set_relationship_pref(self):
        """Customer-learned routes must carry LOCAL_PREF 200 after
        import, peers 100, providers 50 (Gao-Rexford)."""
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        # Find a transit node and inspect a route learned from a stub
        # customer.
        for transit in topology.nodes_in_tier(2):
            router = live.router(transit)
            for peer, rib in router.adj_rib_in.items():
                relationship = topology.relationships.get((transit, peer))
                for route in rib.routes():
                    expected = {
                        REL_CUSTOMER: 200, REL_PEER: 100, REL_PROVIDER: 50,
                    }[relationship]
                    assert route.attributes.local_pref == expected

    def test_valley_free_export(self):
        """No route learned from a peer/provider may be exported to
        another peer/provider — check Adj-RIB-Out contents."""
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        from repro.topo.internet import _REL_COMMUNITY

        peer_tag = _REL_COMMUNITY[REL_PEER]
        provider_tag = _REL_COMMUNITY[REL_PROVIDER]
        for name in sorted(live.network.processes):
            router = live.router(name)
            for peer, rib_out in router.adj_rib_out.items():
                relationship = topology.relationships.get((name, peer))
                if relationship == REL_CUSTOMER:
                    continue  # everything may go to customers
                for prefix in rib_out.prefixes():
                    advertised = rib_out.advertised(prefix)
                    communities = advertised.attributes.communities
                    assert peer_tag not in communities, (
                        f"{name} leaked a peer route to {relationship} {peer}"
                    )
                    assert provider_tag not in communities, (
                        f"{name} leaked a provider route to "
                        f"{relationship} {peer}"
                    )


def _topology_digest(params: TopologyParams) -> str:
    """A byte-level fingerprint of everything the generator emits.

    Rendering every config through the BIRD compiler covers names,
    ASNs, router ids, networks, neighbor order, filter semantics and
    link order (via the address plan) in one deterministic text form.
    """
    from repro.differential.birdconf import AddressPlan, compile_router

    topology = build_internet(params)
    plan = AddressPlan(topology.links)
    digest = hashlib.sha256()
    for config in topology.configs:
        digest.update(compile_router(config, plan).encode())
    for pair in sorted(topology.relationships.items()):
        digest.update(repr(pair).encode())
    return digest.hexdigest()


class TestGeneratorInvariants:
    """Same seed ⇒ byte-identical output, across processes too.

    The campaign layer replays topologies from (params, seed) alone —
    any hidden dependence on hash randomisation or process state would
    silently break snapshot replay and the differential oracle.
    """

    def test_same_seed_byte_identical_in_process(self):
        assert _topology_digest(SMALL) == _topology_digest(SMALL)

    def test_same_seed_byte_identical_across_processes(self):
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))), "src",
        )
        code = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from test_internet import _topology_digest, SMALL\n"
            "print(_topology_digest(SMALL))\n"
        ).format(src=src)
        digests = []
        for hash_seed in ("1", "271828"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=os.path.dirname(
                           os.path.abspath(__file__)))
            completed = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, env=env, check=True,
            )
            digests.append(completed.stdout.strip())
        assert digests[0] == digests[1] == _topology_digest(SMALL)

    def test_tier1_clique_has_every_link(self):
        params = TopologyParams(tier1=4, transit=3, stubs=3, seed=2)
        topology = build_internet(params)
        tier1 = topology.nodes_in_tier(1)
        linked = {
            frozenset((a, b)) for a, b, _profile in topology.links
        }
        for i, a in enumerate(tier1):
            for b in tier1[i + 1:]:
                assert frozenset((a, b)) in linked, (
                    f"tier-1 clique missing physical link {a}–{b}"
                )
                assert topology.relationships[(a, b)] == REL_PEER

    def test_valley_free_under_oracle_export_semantics(self):
        """The oracle's own export machinery — which runs the generated
        filters through an independent interpreter — must withhold
        peer/provider-learned routes from peers and providers."""
        from repro.differential.reference import (
            ReferenceOracle,
            _decanonicalize,
        )
        from repro.topo.internet import _REL_COMMUNITY

        topology = build_internet(SMALL)
        oracle = ReferenceOracle(topology.configs, links=topology.links)
        outcome = oracle.stable_state()
        assert outcome.converged
        learned_tags = {
            _REL_COMMUNITY[REL_PEER], _REL_COMMUNITY[REL_PROVIDER],
        }
        checked = 0
        for name, table in outcome.ribs.items():
            lateral = [
                other for (node, other), rel
                in topology.relationships.items()
                if node == name and rel in (REL_PEER, REL_PROVIDER)
            ]
            for prefix, route in table.items():
                if not learned_tags & set(route.communities):
                    continue  # own or customer-learned: exportable
                for neighbor in lateral:
                    exported = oracle._export(
                        name, neighbor, prefix, _decanonicalize(route)
                    )
                    assert exported is None, (
                        f"{name} would leak {prefix} to {neighbor}"
                    )
                    checked += 1
        assert checked, "no peer/provider-learned routes exercised"


class TestConvergence:
    def test_small_internet_converges_fully(self):
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        assert convergence_complete(live.network)

    def test_all_sessions_established(self):
        topology = build_internet(SMALL)
        live = LiveSystem.build(topology.configs, topology.links, seed=1)
        live.converge(deadline=300)
        for router in live.routers():
            assert len(router.established_peers()) == len(router.sessions)
