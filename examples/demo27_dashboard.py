#!/usr/bin/env python3
"""The demo itself (Figure 1): DiCE over 27 BGP routers.

Builds the canonical 27-router Internet-like topology (3 tier-1 in a
peering clique, 8 transit providers, 16 stub ASes, Gao-Rexford
policies), converges it, then runs a DiCE exploration cycle over a few
transit routers and renders the terminal dashboard — the reproduction's
stand-in for the demo GUI.

Run:  python examples/demo27_dashboard.py            (full, ~minutes)
      python examples/demo27_dashboard.py --quick    (fewer inputs)
"""

import sys

from repro import DiceOrchestrator, OrchestratorConfig
from repro.checks import default_property_suite
from repro.core.live import LiveSystem
from repro.topo.demo27 import build_demo27
from repro.viz import render_campaign, render_live_system, render_topology


def main() -> None:
    quick = "--quick" in sys.argv
    topology = build_demo27()
    print(render_topology(topology))
    print()

    live = LiveSystem.build(topology.configs, topology.links, seed=27)
    converged_at = live.converge(deadline=600)
    print(f"converged at t={converged_at:.1f}s "
          f"({live.total_routes()} routes installed)")
    print(render_live_system(live))
    print()

    dice = DiceOrchestrator(live, default_property_suite())
    explorer_nodes = topology.nodes_in_tier(2)[: (2 if quick else 4)]
    print(f"exploring at: {', '.join(explorer_nodes)}")
    result = dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=5 if quick else 25,
            explorer_nodes=explorer_nodes,
            horizon=3.0,
            seed=27,
        )
    )
    print(render_campaign(result))


if __name__ == "__main__":
    main()
