#!/usr/bin/env python3
"""Programming-error scenario: concolic exploration finds a crash bug.

Router r2 carries a latent bug modeled on a real class of C-router
defect: a specific community value (0xffff0000) trips a missing bounds
check and crashes the daemon.  Random fuzzing rarely finds a 1-in-2^32
value; concolic execution *solves* for it — it observes the comparison
against the community in the handler, negates it, and asks the solver
for bytes that make it true.

The crash happens in DiCE's cloned snapshot, never in the live router.

Run:  python examples/buggy_router.py
"""

import dataclasses

from repro import DiceOrchestrator, OrchestratorConfig, quickstart_system
from repro.bgp import faults
from repro.checks import default_property_suite
from repro.viz import render_campaign


def main() -> None:
    live = quickstart_system(seed=5)
    router = live.router("r2")
    router.config = dataclasses.replace(
        router.config,
        enabled_bugs=frozenset({faults.BUG_COMMUNITY_CRASH}),
    )
    live.converge()
    print(
        "r2 carries a latent bug: community "
        f"{faults.COMMUNITY_CRASH_VALUE:#010x} crashes its UPDATE handler"
    )

    dice = DiceOrchestrator(live, default_property_suite())
    result = dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=250,
            explorer_nodes=["r2"],
            grammar_seeds=5,
            seed=11,
        )
    )
    print(render_campaign(result))

    crash_reports = [
        report for report in result.reports
        if report.fault_class == "programming_error"
    ]
    assert crash_reports, "the crash bug must be found"
    print(f"\ncrash-triggering input: {crash_reports[0].input_summary}")
    print(f"live r2 crash count (must be 0): {live.router('r2').crash_count}")


if __name__ == "__main__":
    main()
