#!/usr/bin/env python3
"""Policy-conflict scenario: BAD GADGET oscillation caught by DiCE.

Three ASes around an origin each prefer the path through their
clockwise neighbor (expressed in their import filters) — Griffin's
BAD GADGET, which has no stable routing and oscillates forever.  Each
AS's policy is locally reasonable; only their *interaction* is faulty.

DiCE explores over a cloned snapshot and the route-stability property
observes the Loc-RIB churn within the exploration horizon.

Run:  python examples/policy_conflict.py
"""

from repro import DiceOrchestrator, OrchestratorConfig
from repro.checks import default_property_suite
from repro.core.live import LiveSystem
from repro.topo.gadgets import GADGET_PREFIX, build_bad_gadget
from repro.viz import render_campaign


def main() -> None:
    configs, links = build_bad_gadget()
    live = LiveSystem.build(configs, links, seed=13)
    live.run(until=3)  # sessions up; the oscillation is underway

    r1 = live.router("r1")
    print(
        f"after 3s the wheel is already flapping: r1 changed its best "
        f"route for {GADGET_PREFIX} "
        f"{len(r1.loc_rib.changes_for(GADGET_PREFIX))} times"
    )

    dice = DiceOrchestrator(live, default_property_suite())
    result = dice.run_campaign(
        OrchestratorConfig(
            inputs_per_node=5,
            horizon=15.0,  # give the oscillation time to show in clones
            explorer_nodes=["r1"],
            seed=21,
        )
    )
    print(render_campaign(result))

    conflict_reports = [
        report for report in result.reports
        if report.fault_class == "policy_conflict"
    ]
    assert conflict_reports, "the oscillation must be detected"
    evidence = conflict_reports[0].evidence
    print(
        f"\npolicy conflict detected: {evidence['prefix']} flapped "
        f"{evidence['transitions']} times within one exploration horizon"
    )


if __name__ == "__main__":
    main()
