#!/usr/bin/env python3
"""Quickstart: run DiCE over a small healthy federation.

Builds the 3-AS line system, converges it, then runs one DiCE campaign
with the default property suite.  On a healthy system the campaign
reports no faults — this example shows the moving parts and the summary
output format.

Run:  python examples/quickstart.py
"""

from repro import DiceOrchestrator, OrchestratorConfig, quickstart_system
from repro.checks import default_property_suite
from repro.viz import render_campaign, render_live_system


def main() -> None:
    # 1. The "deployed system": three ASes in a line, one prefix each.
    live = quickstart_system(seed=1)
    converged_at = live.converge()
    print(f"live system converged at t={converged_at:.1f}s")
    print(render_live_system(live))
    print()

    # 2. Attach DiCE: the property suite covers the paper's three fault
    #    classes; origination claims derive from the initial configs.
    dice = DiceOrchestrator(live, default_property_suite())

    # 3. One exploration cycle: snapshot each node, explore 20 concolic
    #    inputs per node over cloned snapshots, check properties.
    result = dice.run_campaign(
        OrchestratorConfig(inputs_per_node=20, cycles=1, seed=7)
    )

    print(render_campaign(result))
    if not result.reports:
        print("\nhealthy system: no faults, as expected")


if __name__ == "__main__":
    main()
