#!/usr/bin/env python3
"""Proactive what-if analysis: vet a configuration change before applying.

The paper's vision is *proactive* fault detection — finding the fault
before it occurs in the live system.  This example shows the purest form
of that workflow: the operator of AS 65003 is about to add
``network 10.1.0.0/16``.  DiCE snapshots the running system, applies the
pending change inside an isolated clone, watches the consequences, and
reports the would-be hijack.  The live network never carries the bad
announcement.

Run:  python examples/vet_config_change.py
"""

from repro import DiceOrchestrator, quickstart_system
from repro.bgp.config import AddNetwork
from repro.bgp.ip import Prefix
from repro.checks import default_property_suite

PENDING = AddNetwork(Prefix("10.1.0.0/16"))  # space registered to AS 65001
SAFE = AddNetwork(Prefix("203.0.113.0/24"))  # unregistered space


def main() -> None:
    live = quickstart_system(seed=8)
    live.converge()
    dice = DiceOrchestrator(live, default_property_suite())

    print(f"operator of r3 proposes: {PENDING.describe()}")
    reports = dice.vet_change("r3", PENDING, horizon=5.0)
    if reports:
        print("change REJECTED by pre-deployment vetting:")
        for report in reports:
            print(f"  {report.headline()}")
    assert reports, "the hijacking change must be flagged"
    assert any(r.fault_class == "operator_mistake" for r in reports)

    # The live system never saw it.
    route = live.router("r2").loc_rib.get(Prefix("10.1.0.0/16"))
    assert route is not None and route.peer == "r1"
    print("\nlive system unchanged: r2 still routes 10.1.0.0/16 via r1")

    print(f"\noperator instead proposes: {SAFE.describe()}")
    reports = dice.vet_change("r3", SAFE, horizon=5.0)
    assert reports == [], "the clean change must vet clean"
    print("change vetted clean — safe to apply")
    live.apply_change("r3", SAFE)
    live.converge()
    print("applied; r1 now reaches", SAFE.prefix, "via",
          live.router("r1").loc_rib.get(SAFE.prefix).peer)


if __name__ == "__main__":
    main()
