#!/usr/bin/env python3
"""Drive the library from textual (BIRD-flavoured) configuration files.

Shows the configuration front-end: router blocks and filters parsed
from text, built into a live system, with a route policy in action —
the same interpreter path DiCE's concolic layer explores.

Run:  python examples/config_file_router.py
"""

from repro.bgp.config import parse_config
from repro.core.live import LiveSystem
from repro.net.link import LinkProfile
from repro.viz import render_live_system

CONFIG = """
# AS 65001 originates 10.1/16 and tags everything it exports.
router r1 {
    local as 65001;
    router id 172.16.0.1;
    network 10.1.0.0/16;
    neighbor r2 { as 65002; export filter exp_tagged; }
}

# AS 65002 prefers customer-looking routes and drops bogons.
router r2 {
    local as 65002;
    router id 172.16.0.2;
    network 10.2.0.0/16;
    neighbor r1 { as 65001; import filter imp_from_r1; }
    neighbor r3 { as 65003; }
}

router r3 {
    local as 65003;
    router id 172.16.0.3;
    network 10.3.0.0/16;
    neighbor r2 { as 65002; }
}

filter exp_tagged {
    bgp_community.add((65001, 100));
    accept;
}

filter imp_from_r1 {
    if net ~ [ 0.0.0.0/0{0,7} ] then reject;      # too-short bogons
    if bgp_path.len > 10 then reject;              # path-length guard
    if bgp_community ~ (65001, 100) then {
        bgp_local_pref = 180;                      # tagged: prefer
        accept;
    }
    bgp_local_pref = 90;
    accept;
}
"""


def main() -> None:
    configs = parse_config(CONFIG)
    links = [
        ("r1", "r2", LinkProfile.wan(latency_ms=15)),
        ("r2", "r3", LinkProfile.wan(latency_ms=20)),
    ]
    live = LiveSystem.build(configs, links, seed=2)
    live.converge()
    print(render_live_system(live))

    from repro.bgp.ip import Prefix

    route = live.router("r2").loc_rib.get(Prefix("10.1.0.0/16"))
    print(f"\nr2's route to 10.1.0.0/16: {route.describe()}")
    assert route.attributes.local_pref == 180, "filter must have applied"
    print("import filter applied: local_pref=180, community tag present:",
          [hex(c) for c in route.attributes.communities])


if __name__ == "__main__":
    main()
