#!/usr/bin/env python3
"""Operator-mistake scenario: a prefix hijack caught by DiCE.

The operator of AS 65003 adds ``network 10.1.0.0/16`` — address space
registered to AS 65001.  The change is locally valid (the router
happily originates it), but DiCE's federated origin-authenticity check
flags it: the registered owner, asked over the narrow sharing
interface, still originates the space and does not authorize AS 65003.

This is the scenario the paper's introduction motivates ("the
Internet's routing has suffered from multiple IP prefix hijackings").

Run:  python examples/prefix_hijack.py
"""

from repro import DiceOrchestrator, OrchestratorConfig, quickstart_system
from repro.bgp.config import AddNetwork
from repro.bgp.ip import Prefix
from repro.checks import default_property_suite
from repro.viz import render_campaign

HIJACKED = Prefix("10.1.0.0/16")  # registered to AS 65001 (r1)


def main() -> None:
    live = quickstart_system(seed=3)
    live.converge()
    dice = DiceOrchestrator(live, default_property_suite())

    print(f"operator of r3 (AS 65003) adds 'network {HIJACKED}' ...")
    live.apply_change("r3", AddNetwork(HIJACKED))
    live.run(until=live.network.sim.now + 5)

    result = dice.run_campaign(
        OrchestratorConfig(inputs_per_node=15, seed=9)
    )
    print(render_campaign(result))

    hijack_reports = [
        report for report in result.reports
        if report.fault_class == "operator_mistake"
    ]
    assert hijack_reports, "the hijack must be detected"
    first = hijack_reports[0]
    print(
        f"\nhijack detected: AS{first.evidence['origin_as']} originates "
        f"{first.evidence['prefix']}, registered to "
        f"AS{first.evidence['owners']}"
    )
    print(
        "note: detection used only yes/no queries over the sharing "
        "interface — no remote RIB or config was read."
    )


if __name__ == "__main__":
    main()
