#!/usr/bin/env python3
"""Offline parser testing — the paper's mitigation (ii) in action.

DiCE keeps online exploration focused on state-changing handlers because
"other code such as message parsers could be tested offline".  This
example runs that offline harness against the BGP message decoder:
grammar seeds, concolic negation of decoder branches, random mutation,
and a replayed regression corpus — at hundreds of inputs per second,
versus ~2 inputs/second for full online exploration.

Run:  python examples/offline_parser.py
"""

from repro.bgp.messages import KeepaliveMessage, OpenMessage
from repro.bgp.ip import IPv4Address
from repro.core.offline import OfflineParserTester


def main() -> None:
    tester = OfflineParserTester(seed=42)
    # A regression corpus: known-good frames plus past trouble-makers.
    tester.add_corpus([
        KeepaliveMessage().encode(),
        OpenMessage(65001, 90, IPv4Address("10.0.0.1")).encode(),
        b"",                      # the empty read
        b"\xff" * 19,             # header-only garbage claiming length 0xffff
        b"\xff" * 16 + b"\x00\x13\x02",  # UPDATE with no body
    ])
    report = tester.run(budget=500)
    print(report.summary())
    rate = report.inputs / max(report.duration, 1e-9)
    print(f"\nthroughput: {rate:.0f} decoder inputs/second")
    if report.crashes:
        raise SystemExit("parser bugs found — see findings above")
    print("parser clean: every malformed input answered with a proper "
          "NOTIFICATION-mapped error")


if __name__ == "__main__":
    main()
